// Unit tests for greenhpc::util — units, calendar, rng, table, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "util/calendar.hpp"
#include "util/error.hpp"
#include "util/noise.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace greenhpc::util {
namespace {

// --- units --------------------------------------------------------------------

TEST(Units, PowerTimesDurationIsEnergy) {
  const Energy e = kilowatts(2.0) * hours(3.0);
  EXPECT_DOUBLE_EQ(e.kilowatt_hours(), 6.0);
  EXPECT_DOUBLE_EQ(e.joules(), 2000.0 * 3.0 * 3600.0);
}

TEST(Units, EnergyDividedByDurationIsPower) {
  const Power p = kilowatt_hours(6.0) / hours(3.0);
  EXPECT_DOUBLE_EQ(p.kilowatts(), 2.0);
}

TEST(Units, EnergyDividedByPowerIsDuration) {
  const Duration d = kilowatt_hours(6.0) / kilowatts(2.0);
  EXPECT_DOUBLE_EQ(d.hours(), 3.0);
}

TEST(Units, EnergyTimesPriceIsMoney) {
  const Money m = megawatt_hours(2.0) * usd_per_mwh(25.0);
  EXPECT_DOUBLE_EQ(m.dollars(), 50.0);
}

TEST(Units, EnergyTimesIntensityIsMass) {
  const MassCo2 c = kilowatt_hours(100.0) * kg_per_kwh(0.3);
  EXPECT_DOUBLE_EQ(c.kilograms(), 30.0);
  EXPECT_NEAR(c.pounds(), 66.14, 0.01);
}

TEST(Units, EnergyTimesWaterIntensityIsVolume) {
  const WaterVolume w = kilowatt_hours(10.0) * liters_per_kwh(1.8);
  EXPECT_DOUBLE_EQ(w.liters(), 18.0);
  EXPECT_DOUBLE_EQ(w.cubic_meters(), 0.018);
}

TEST(Units, TemperatureConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius(100.0).fahrenheit(), 212.0);
  EXPECT_DOUBLE_EQ(fahrenheit(32.0).celsius(), 0.0);
  EXPECT_DOUBLE_EQ(celsius(0.0).kelvin(), 273.15);
  EXPECT_NEAR(fahrenheit(celsius(23.5).fahrenheit()).celsius(), 23.5, 1e-12);
}

TEST(Units, TemperatureDifferenceAndShift) {
  EXPECT_DOUBLE_EQ(celsius(25.0) - celsius(20.0), 5.0);
  EXPECT_DOUBLE_EQ(celsius(20.0).shifted(8.0).celsius(), 28.0);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  EXPECT_DOUBLE_EQ(kilowatts(3.0) / kilowatts(1.5), 2.0);
  EXPECT_DOUBLE_EQ(hours(2.0) / minutes(30.0), 4.0);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(watts(100.0), watts(200.0));
  EXPECT_GE(kilowatt_hours(1.0), kilowatt_hours(1.0));
  EXPECT_EQ(usd(5.0), usd(5.0));
}

// Additive-group / scalar laws checked over a sweep of magnitudes.
class UnitsLaws : public ::testing::TestWithParam<double> {};

TEST_P(UnitsLaws, PowerArithmetic) {
  const double v = GetParam();
  const Power a = watts(v);
  const Power b = watts(2.0 * v + 1.0);
  EXPECT_DOUBLE_EQ((a + b).watts(), a.watts() + b.watts());
  EXPECT_DOUBLE_EQ((b - a).watts(), b.watts() - a.watts());
  EXPECT_DOUBLE_EQ((a * 3.0).watts(), 3.0 * v);
  EXPECT_DOUBLE_EQ((3.0 * a).watts(), (a * 3.0).watts());
  EXPECT_DOUBLE_EQ((a / 2.0).watts(), v / 2.0);
  EXPECT_DOUBLE_EQ((-a).watts(), -v);
  Power acc = a;
  acc += b;
  EXPECT_DOUBLE_EQ(acc.watts(), (a + b).watts());
  acc -= b;
  EXPECT_NEAR(acc.watts(), a.watts(), 1e-9 * std::abs(v) + 1e-12);
}

TEST_P(UnitsLaws, EnergyConversionConsistency) {
  const double kwh = GetParam();
  EXPECT_NEAR(kilowatt_hours(kwh).joules(), kwh * 3.6e6, 1e-6 * std::abs(kwh) + 1e-9);
  EXPECT_NEAR(kilowatt_hours(kwh).megawatt_hours(), kwh / 1000.0, 1e-12 * std::abs(kwh) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, UnitsLaws,
                         ::testing::Values(0.0, 1.0, 0.037, 250.0, 1.0e6, 7.3e-4));

// --- calendar ------------------------------------------------------------------

TEST(Calendar, EpochIsJan2020) {
  const CivilDate d = civil_of(TimePoint::from_seconds(0.0));
  EXPECT_EQ(d, (CivilDate{2020, 1, 1}));
}

TEST(Calendar, LeapYearRules) {
  EXPECT_TRUE(is_leap_year(2020));
  EXPECT_FALSE(is_leap_year(2021));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_EQ(days_in_month(2020, 2), 29);
  EXPECT_EQ(days_in_month(2021, 2), 28);
  EXPECT_EQ(days_in_month(2021, 12), 31);
}

TEST(Calendar, RoundTripThroughTimepoint) {
  for (int year : {2020, 2021, 2022}) {
    for (int month = 1; month <= 12; ++month) {
      for (int day : {1, 15, days_in_month(year, month)}) {
        const CivilDate d{year, month, day};
        EXPECT_EQ(civil_of(to_timepoint(d)), d) << to_string(d);
      }
    }
  }
}

TEST(Calendar, HourOfDay) {
  const TimePoint t = to_timepoint(CivilDate{2020, 3, 5}, 13.5);
  EXPECT_NEAR(hour_of_day(t), 13.5, 1e-9);
  EXPECT_EQ(civil_of(t), (CivilDate{2020, 3, 5}));
}

TEST(Calendar, DayOfWeek) {
  // 2020-01-01 was a Wednesday (Mon=0 -> 2).
  EXPECT_EQ(day_of_week(to_timepoint(CivilDate{2020, 1, 1})), 2);
  // 2021-12-25 was a Saturday.
  EXPECT_EQ(day_of_week(to_timepoint(CivilDate{2021, 12, 25})), 5);
}

TEST(Calendar, MonthKeyIndexRoundTrip) {
  for (int idx = -25; idx <= 40; ++idx) {
    EXPECT_EQ(MonthKey::from_index(idx).index_from_epoch(), idx);
  }
  EXPECT_EQ((MonthKey{2021, 7}).index_from_epoch(), 18);
  EXPECT_EQ(MonthKey::from_index(18), (MonthKey{2021, 7}));
}

TEST(Calendar, MonthSpanCoversWholeMonth) {
  const MonthSpan feb = month_span(MonthKey{2020, 2});
  EXPECT_DOUBLE_EQ(feb.length().days(), 29.0);  // leap February
  const MonthSpan feb21 = month_span(MonthKey{2021, 2});
  EXPECT_DOUBLE_EQ(feb21.length().days(), 28.0);
  EXPECT_EQ(civil_of(feb.start), (CivilDate{2020, 2, 1}));
}

TEST(Calendar, YearFraction) {
  EXPECT_NEAR(year_fraction(to_timepoint(CivilDate{2021, 1, 1})), 0.0, 1e-9);
  EXPECT_NEAR(year_fraction(to_timepoint(CivilDate{2021, 7, 2})), 0.5, 0.01);
}

TEST(Calendar, Labels) {
  EXPECT_EQ((MonthKey{2020, 7}).label(), "2020-07");
  EXPECT_EQ(to_string(CivilDate{2021, 3, 9}), "2021-03-09");
  EXPECT_STREQ(month_name(1), "Jan");
  EXPECT_STREQ(month_name(12), "Dec");
}

// --- rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform01() == b.uniform01()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::array<int, 6> counts{};
  for (int i = 0; i < 60000; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

class PoissonMeans : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeans, MeanMatches) {
  const double lambda = GetParam();
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
  EXPECT_NEAR(sum / n, lambda, std::max(0.05, lambda * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMeans, ::testing::Values(0.1, 1.0, 4.0, 25.0, 60.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0], 10000, 700);
  EXPECT_NEAR(counts[1], 30000, 1000);
  EXPECT_NEAR(counts[2], 60000, 1000);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(31);
  EXPECT_THROW((void)rng.weighted_index(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index(std::vector<double>{-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(child1.uniform01(), child2.uniform01());
  // Parent and child streams should not track each other.
  Rng parent(5);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.uniform01() == child.uniform01()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

// --- noise ------------------------------------------------------------------------

TEST(Noise, BoundedAndDeterministic) {
  const SmoothNoise n(42, hours(24));
  for (int h = 0; h < 24 * 60; ++h) {
    const TimePoint t = TimePoint::from_seconds(h * 3600.0);
    const double v = n.value(t);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
    EXPECT_DOUBLE_EQ(v, SmoothNoise(42, hours(24)).value(t));
  }
}

TEST(Noise, ContinuousAcrossKnots) {
  const SmoothNoise n(7, hours(10));
  // Sample just before/after a knot boundary.
  const double knot_s = 10.0 * 3600.0;
  const double before = n.value(TimePoint::from_seconds(knot_s - 0.5));
  const double after = n.value(TimePoint::from_seconds(knot_s + 0.5));
  EXPECT_NEAR(before, after, 0.01);
}

TEST(Noise, FractalStaysBounded) {
  const FractalNoise n(1234, hours(48));
  for (int i = 0; i < 5000; ++i) {
    const double v = n.value(TimePoint::from_seconds(i * 977.0));
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

// --- table ------------------------------------------------------------------------

TEST(Table, AlignedPrinting) {
  Table t({"name", "value"});
  t.add("alpha", 1.5);
  t.add("beta", 22.25);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add("plain", "with,comma");
  t.add_row({"quote\"inside", "x"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, MultibyteCellsPadByDisplayWidth) {
  // "±" is 2 UTF-8 bytes but 1 display column; padding must use display
  // columns or every CI-annotated cell drifts one space per "±".
  Table t({"metric", "value"});
  t.add("a", "1.0 ± 0.5");
  t.add("b", "123456789");  // same display width as the ± cell
  std::ostringstream os;
  t.print(os);
  std::string line;
  std::istringstream in(os.str());
  std::size_t pm_line_bytes = 0, plain_line_bytes = 0;
  while (std::getline(in, line)) {
    if (line.find("±") != std::string::npos) pm_line_bytes = line.size();
    if (line.find("123456789") != std::string::npos) plain_line_bytes = line.size();
  }
  ASSERT_GT(pm_line_bytes, 0u);
  // The ± line carries one extra byte (the 2-byte glyph) but no extra padding.
  EXPECT_EQ(pm_line_bytes, plain_line_bytes + 1);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormattingHelpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_sci(123456.0, 3), "1.23e+05");
}

// --- errors ---------------------------------------------------------------------

TEST(Error, RequireAndEnsure) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad arg"), std::invalid_argument);
  EXPECT_NO_THROW(ensure(true, "ok"));
  EXPECT_THROW(ensure(false, "bug"), std::logic_error);
}

// --- thread pool -----------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversIndexSpaceExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

// --- thread pool: stress & failure modes -----------------------------------

TEST(ThreadPoolStress, ConcurrentEnqueueFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kTasksEach = 250;
  std::atomic<int> counter{0};
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(kProducers * kTasksEach);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        auto future = pool.submit([&counter] { counter.fetch_add(1); });
        const std::scoped_lock lock(futures_mutex);
        futures.push_back(std::move(future));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), kProducers * kTasksEach);
}

TEST(ThreadPoolStress, ThrowingTaskDoesNotLoseSubsequentTasks) {
  ThreadPool pool(2);
  auto bomb = pool.submit([] { throw std::runtime_error("boom"); });
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  EXPECT_THROW(bomb.get(), std::runtime_error);
  for (auto& future : futures) future.get();  // would deadlock if a worker died
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolStress, InterleavedThrowersAndWorkers) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> bombs, workers;
  for (int i = 0; i < 50; ++i) {
    bombs.push_back(pool.submit([] { throw std::logic_error("bad"); }));
    workers.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& bomb : bombs) EXPECT_THROW(bomb.get(), std::logic_error);
  for (auto& worker : workers) worker.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedWork) {
  // One worker, many queued tasks: shutdown must run everything already
  // accepted, not drop the backlog.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 200; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins here
  EXPECT_EQ(counter.load(), 200);
}

// Regression: parallel_for used to rethrow on the first failed future while
// later chunks were still queued, unwinding the caller's fn (and, in
// ReplicaRunner, the results vector) out from under them — a use-after-free
// the ASan CI job flagged as flaky. It must wait for every chunk first.
TEST(ThreadPoolStress, ParallelForWaitsForAllChunksOnException) {
  // One worker: the throwing first chunk completes long before the queued
  // slow chunks, so an early rethrow would escape with work still pending.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, 64,
                            [&](std::size_t i) {
                              if (i == 0) throw std::runtime_error("early");
                              std::this_thread::sleep_for(std::chrono::milliseconds(1));
                              ran.fetch_add(1);
                            }),
               std::runtime_error);
  // Every chunk other than the throwing one fully ran before the exception
  // escaped (48 = 64 minus the aborted 16-item chunk on a 1-thread pool)...
  const int at_throw = ran.load();
  EXPECT_GE(at_throw, 48);
  // ...and nothing is still running against caller state afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ran.load(), at_throw);
}

TEST(ThreadPoolStress, ParallelForPropagatesExceptionAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("item 37");
                            }),
               std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> counter{0};
  parallel_for(pool, 64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace greenhpc::util
