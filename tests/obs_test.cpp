// Unit tests for greenhpc::obs — the flight recorder (metrics pipeline,
// decision trace, phase profiler) and the two hot-path fixes that rode
// along with it (accountant slot lookup, scheduler dispatch erase).
//
// The load-bearing guarantee is at the bottom: attaching a fully enabled
// recorder must leave the simulated run bit-identical to an uninstrumented
// one, for both the single twin and a migrating fleet.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "migrate/planner.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_report.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/fleet.hpp"

namespace greenhpc::obs {
namespace {

using util::TimePoint;

// --- metrics registry --------------------------------------------------------

TEST(Metrics, RegistrySamplesInRegistrationOrder) {
  MetricsRegistry reg;
  Counter* jobs = reg.counter("jobs");
  double depth = 3.0;
  reg.gauge("depth", [&] { return depth; });
  MetricHistogram* waits = reg.histogram("wait", 0.0, 10.0, 10);
  jobs->add(2.0);
  waits->add(1.0);
  waits->add(3.0);

  const std::vector<std::string> cols = reg.column_names();
  const std::vector<std::string> expected = {"jobs",      "depth",    "wait.count",
                                             "wait.mean", "wait.p50", "wait.p95"};
  EXPECT_EQ(cols, expected);

  std::vector<double> row;
  reg.sample_into(row);
  ASSERT_EQ(row.size(), cols.size());
  EXPECT_DOUBLE_EQ(row[0], 2.0);
  EXPECT_DOUBLE_EQ(row[1], 3.0);
  EXPECT_DOUBLE_EQ(row[2], 2.0);  // wait.count
  EXPECT_DOUBLE_EQ(row[3], 2.0);  // exact mean of {1, 3}
}

TEST(Metrics, RegistryDedupesByNameAndRejectsConflicts) {
  MetricsRegistry reg;
  Counter* a = reg.counter("shared");
  EXPECT_EQ(reg.counter("shared"), a);  // counters share by name
  MetricHistogram* h = reg.histogram("h", 0.0, 1.0, 4);
  EXPECT_EQ(reg.histogram("h", 0.0, 1.0, 4), h);  // same layout re-fetches
  EXPECT_THROW((void)reg.histogram("h", 0.0, 2.0, 4), std::exception);
  reg.gauge("g", [] { return 0.0; });
  EXPECT_THROW(reg.gauge("g", [] { return 1.0; }), std::exception);
  EXPECT_EQ(reg.instrument_count(), 3u);
}

TEST(Metrics, HistogramMergeMatchesAddingEverySample) {
  MetricHistogram a(0.0, 100.0, 20);
  MetricHistogram b(0.0, 100.0, 20);
  MetricHistogram all(0.0, 100.0, 20);
  for (int i = 0; i < 200; ++i) {
    const double v = (i * 37 % 140) - 20.0;  // exercises under/overflow too
    ((i % 2 == 0) ? a : b).add(v);
    all.add(v);
  }
  MetricHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.total(), all.total());
  EXPECT_EQ(merged.underflow(), all.underflow());
  EXPECT_EQ(merged.overflow(), all.overflow());
  for (std::size_t bin = 0; bin < all.bin_count(); ++bin) {
    EXPECT_EQ(merged.count(bin), all.count(bin)) << "bin " << bin;
  }
  EXPECT_DOUBLE_EQ(merged.mean(), all.mean());
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), all.quantile(0.5));
  EXPECT_DOUBLE_EQ(merged.quantile(0.95), all.quantile(0.95));

  MetricHistogram other_layout(0.0, 100.0, 10);
  EXPECT_THROW(merged.merge(other_layout), std::exception);
}

TEST(Metrics, TimeSeriesDownsamplesToStayWithinCapacity) {
  MetricsRegistry reg;
  Counter* steps = reg.counter("steps");
  TimeSeriesStore store({/*interval_steps=*/1, /*capacity=*/8});
  for (int i = 0; i < 64; ++i) {
    steps->add();
    store.sample(TimePoint::from_seconds(i * 900.0), reg);
  }
  EXPECT_LE(store.rows(), 8u);
  EXPECT_GT(store.rows(), 2u);
  EXPECT_GT(store.effective_interval(), 1u);
  // Retained rows stay evenly spaced after halving.
  const double spacing =
      store.time(1).seconds_since_epoch() - store.time(0).seconds_since_epoch();
  for (std::size_t r = 2; r < store.rows(); ++r) {
    EXPECT_DOUBLE_EQ(
        store.time(r).seconds_since_epoch() - store.time(r - 1).seconds_since_epoch(), spacing)
        << "row " << r;
  }
}

TEST(Metrics, TimeSeriesHonorsSampleInterval) {
  MetricsRegistry reg;
  reg.gauge("g", [] { return 1.0; });
  TimeSeriesStore store({/*interval_steps=*/4, /*capacity=*/64});
  for (int i = 0; i < 16; ++i) store.sample(TimePoint::from_seconds(i * 1.0), reg);
  EXPECT_EQ(store.rows(), 4u);
}

TEST(Metrics, JsonlExportPassesTheSchemaValidator) {
  MetricsRegistry reg;
  Counter* c = reg.counter("events");
  reg.gauge("level", [] { return 0.5; });
  TimeSeriesStore store({1, 16});
  for (int i = 0; i < 5; ++i) {
    c->add();
    store.sample(TimePoint::from_seconds(i * 60.0), reg);
  }
  std::istringstream in(store.to_jsonl(reg));
  EXPECT_TRUE(validate_metrics_jsonl(in).empty());
  const std::string csv = store.to_csv(reg);
  EXPECT_EQ(csv.rfind("t_seconds,events,level", 0), 0u);
}

TEST(Metrics, ValidatorFlagsSchemaViolations) {
  const auto errors_of = [](const std::string& text) {
    std::istringstream in(text);
    return validate_metrics_jsonl(in);
  };
  EXPECT_FALSE(errors_of("").empty());  // no rows at all
  EXPECT_FALSE(errors_of("{\"x\": 1}\n").empty());  // missing t_seconds
  // Key set must repeat on every line.
  EXPECT_FALSE(
      errors_of("{\"t_seconds\": 0, \"a\": 1}\n{\"t_seconds\": 1, \"b\": 1}\n").empty());
  // Values must be numbers (or null).
  EXPECT_FALSE(errors_of("{\"t_seconds\": 0, \"a\": \"one\"}\n").empty());
  EXPECT_TRUE(errors_of("{\"t_seconds\": 0, \"a\": 1}\n{\"t_seconds\": 1, \"a\": 2}\n").empty());
}

// --- trace writer round-trip -------------------------------------------------

TEST(Trace, WriterRoundTripsThroughTheSummarizer) {
  TraceWriter trace;
  trace.process_name(1, "region \"one\"");  // exercises escaping
  trace.thread_name(1, 0, "lane");
  trace.complete("phase_a", "phase", TraceWriter::kProfilerPid, 0, 10.0, 5.0,
                 {arg("n", 3.0)});
  trace.complete("phase_a", "phase", TraceWriter::kProfilerPid, 0, 20.0, 15.0);
  trace.instant("decision", "route", 0, 0, 30.0, {arg("why", std::string("cheapest"))});
  trace.async_begin("queued", "job.queue", 1, 42, 0.0);
  trace.async_end("queued", "job.queue", 1, 42, 3'600'000'000.0);
  trace.async_begin("queued", "job.queue", 1, 43, 10.0);  // open at end of trace
  EXPECT_EQ(trace.size(), 8u);

  std::stringstream file;
  trace.write(file);
  const TraceParseResult result = summarize_trace(file);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors.front());
  EXPECT_EQ(result.events.size(), 8u);
  EXPECT_EQ(result.count_by_ph.at('X'), 2u);
  EXPECT_EQ(result.count_by_ph.at('i'), 1u);
  EXPECT_EQ(result.count_by_ph.at('M'), 2u);

  const SpanStats& phase = result.complete_spans.at("phase_a");
  EXPECT_EQ(phase.count, 2u);
  EXPECT_DOUBLE_EQ(phase.total_us, 20.0);
  EXPECT_DOUBLE_EQ(phase.max_us, 15.0);

  const SpanStats& queue = result.async_spans.at("job.queue");
  EXPECT_EQ(queue.count, 1u);  // only the matched pair
  EXPECT_DOUBLE_EQ(queue.total_us, 3'600'000'000.0);
  EXPECT_EQ(result.unmatched_async.at("job.queue"), 1u);
}

TEST(Trace, SummarizerFlagsMalformedInput) {
  std::istringstream in(
      "[\n"
      "{\"name\": \"ok\", \"ph\": \"i\", \"ts\": 1},\n"
      "{\"ph\": \"i\", \"ts\": 2},\n"                                  // missing name
      "not json at all,\n"                                             // parse failure
      "{\"name\": \"neg\", \"ph\": \"X\", \"ts\": 3, \"dur\": -1},\n"  // negative duration
      "{\"name\": \"end\", \"ph\": \"e\", \"cat\": \"c\", \"id\": \"7\", \"ts\": 4}\n"
      "]\n");
  const TraceParseResult result = summarize_trace(in);
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.errors.size(), 4u);  // one per bad line above
}

// --- phase profiler ----------------------------------------------------------

TEST(Profiler, PhaseScopeIsNullSafeAndAccumulates) {
  { PhaseScope no_recorder(nullptr, Phase::kRouting); }  // must not crash

  FlightRecorder recorder({/*metrics=*/false, /*trace=*/false, /*profile=*/true});
  {
    PhaseScope scope(&recorder, Phase::kScheduling);
  }
  {
    PhaseScope scope(&recorder, Phase::kScheduling);
  }
  EXPECT_EQ(recorder.profiler().stats(Phase::kScheduling).calls, 2u);
  EXPECT_EQ(recorder.profiler().stats(Phase::kRouting).calls, 0u);
  EXPECT_GE(recorder.profiler().total_seconds(), 0.0);

  FlightRecorder off({/*metrics=*/true, /*trace=*/false, /*profile=*/false});
  { PhaseScope scope(&off, Phase::kScheduling); }
  EXPECT_EQ(off.profiler().stats(Phase::kScheduling).calls, 0u);
}

TEST(Profiler, PhaseTotalsStayWithinWallTime) {
  FlightRecorder recorder({/*metrics=*/false, /*trace=*/false, /*profile=*/true});
  auto dc = core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(), 3);
  dc->set_recorder(&recorder);
  const auto wall_start = std::chrono::steady_clock::now();
  dc->run_until(TimePoint::from_seconds(2.0 * 86400.0));
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  // 2 days at the 15-minute step: the scheduling scope runs once per step,
  // the progress/accounting scope twice (before and after the scheduler).
  const std::size_t steps = 192;
  EXPECT_EQ(recorder.profiler().stats(Phase::kScheduling).calls, steps);
  EXPECT_EQ(recorder.profiler().stats(Phase::kProgressAccounting).calls, 2 * steps);
  EXPECT_GT(recorder.profiler().total_seconds(), 0.0);
  // Scoped phases are a partition of (part of) the step loop, so their sum
  // can never exceed the wall clock around the run (generous slack for
  // timer granularity).
  EXPECT_LE(recorder.profiler().total_seconds(), wall_seconds + 0.5);
}

// --- accountant slot lookup (hot-path satellite) -----------------------------

TEST(Accountant, SlotIndexedLedgerStaysConsistent) {
  auto dc = core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(), 9);
  dc->run_until(TimePoint::from_seconds(3.0 * 86400.0));
  const telemetry::EnergyAccountant& acc = dc->accountant();

  const std::vector<telemetry::JobFootprint> jobs = acc.all_jobs();
  ASSERT_GT(jobs.size(), 50u);
  double job_energy_sum = 0.0;
  for (const telemetry::JobFootprint& fp : jobs) {
    const telemetry::JobFootprint* direct = acc.job(fp.job);
    ASSERT_NE(direct, nullptr) << "job " << fp.job;
    EXPECT_EQ(direct->facility_energy.joules(), fp.facility_energy.joules());
    EXPECT_EQ(direct->gpu_hours, fp.gpu_hours);
    job_energy_sum += fp.facility_energy.joules();
  }
  // Eq. 2: the per-job decomposition must cover the charged total.
  EXPECT_NEAR(job_energy_sum, acc.totals().energy.joules(),
              1e-6 * acc.totals().energy.joules());

  double user_energy_sum = 0.0;
  for (const telemetry::UserFootprint& u : acc.by_user()) {
    user_energy_sum += u.facility_energy.joules();
  }
  EXPECT_NEAR(user_energy_sum, acc.totals().energy.joules(),
              1e-6 * acc.totals().energy.joules());

  // Never-charged ids resolve to null, not a crash or a phantom record.
  EXPECT_EQ(acc.job(0), nullptr);
  EXPECT_EQ(acc.job(1u << 30), nullptr);
}

// --- scheduler dispatch erase (hot-path satellite) ---------------------------

/// Starts every other queued job — a worst case for the dispatch erase,
/// which must drop a scattered subset while preserving FIFO order.
class EveryOtherScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "every_other"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
    std::vector<cluster::JobId> starts;
    for (std::size_t i = 0; i < ctx.queue->size(); i += 2) starts.push_back((*ctx.queue)[i]);
    return starts;
  }
};

/// Returns a job id that was never queued — the contract violation the
/// dispatch erase must keep rejecting.
class RogueScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "rogue"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
    if (ctx.queue->empty()) return {};
    return {cluster::JobId{999999}};
  }
};

TEST(Scheduler, DispatchErasePreservesFifoOrderOfSurvivors) {
  core::DatacenterConfig config;
  core::Datacenter dc(config, std::make_unique<EveryOtherScheduler>());
  std::vector<cluster::JobId> ids;
  for (int i = 0; i < 7; ++i) {
    cluster::JobRequest req;
    req.gpus = 1;
    req.work_gpu_seconds = 100.0 * 3600.0;  // long enough to stay running
    ids.push_back(dc.submit(req));
  }
  ASSERT_EQ(dc.queue(), ids);
  dc.run_until(dc.now() + util::minutes(1));  // exactly one scheduling step
  // Started ids[0], ids[2], ids[4], ids[6]; survivors keep submission order.
  const std::vector<cluster::JobId> expect = {ids[1], ids[3], ids[5]};
  EXPECT_EQ(dc.queue(), expect);
  for (cluster::JobId id : {ids[0], ids[2], ids[4], ids[6]}) {
    EXPECT_EQ(dc.jobs().get(id).state(), cluster::JobState::kRunning) << id;
  }
}

TEST(Scheduler, DispatchRejectsJobsNotInTheQueue) {
  core::DatacenterConfig config;
  core::Datacenter dc(config, std::make_unique<RogueScheduler>());
  cluster::JobRequest req;
  req.gpus = 1;
  req.work_gpu_seconds = 3600.0;
  dc.submit(req);
  EXPECT_THROW(dc.run_until(dc.now() + util::minutes(16)), std::exception);
}

// --- the bit-identity guarantee ----------------------------------------------

TEST(Recorder, SingleSiteRunIsBitIdenticalUnderInstrumentation) {
  const auto run = [](FlightRecorder* recorder) {
    auto dc =
        core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(), 7);
    if (recorder != nullptr) dc->set_recorder(recorder);
    dc->run_until(TimePoint::from_seconds(4.0 * 86400.0));
    return dc->summary();
  };
  const core::RunSummary plain = run(nullptr);
  FlightRecorder recorder({/*metrics=*/true, /*trace=*/true, /*profile=*/true});
  const core::RunSummary instrumented = run(&recorder);

  EXPECT_EQ(plain.jobs_submitted, instrumented.jobs_submitted);
  EXPECT_EQ(plain.jobs_completed, instrumented.jobs_completed);
  EXPECT_EQ(plain.completed_gpu_hours, instrumented.completed_gpu_hours);
  EXPECT_EQ(plain.mean_queue_wait_hours, instrumented.mean_queue_wait_hours);
  EXPECT_EQ(plain.mean_utilization, instrumented.mean_utilization);
  EXPECT_EQ(plain.grid_totals.energy.joules(), instrumented.grid_totals.energy.joules());
  EXPECT_EQ(plain.grid_totals.cost.dollars(), instrumented.grid_totals.cost.dollars());
  EXPECT_EQ(plain.grid_totals.carbon.kilograms(), instrumented.grid_totals.carbon.kilograms());

  // And the recorder actually recorded: trace events, metric rows, phases.
  EXPECT_GT(recorder.trace().size(), 100u);
  EXPECT_GT(recorder.series().rows(), 0u);
  EXPECT_GT(recorder.profiler().total_seconds(), 0.0);
  std::istringstream metrics(recorder.metrics_jsonl());
  EXPECT_TRUE(validate_metrics_jsonl(metrics).empty());
}

TEST(Recorder, FleetRunIsBitIdenticalUnderInstrumentation) {
  // The flagship wiring: forecast router + carbon migration, two regions.
  const auto run = [](FlightRecorder* recorder) {
    std::vector<fleet::RegionProfile> profiles = fleet::make_reference_fleet();
    profiles.resize(2);
    fleet::FleetConfig config;
    config.seed = 17;
    config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, 14.0);
    config.migration.objective = migrate::MigrationObjective::kCarbon;
    fleet::FleetCoordinator fleet(
        config, std::move(profiles), fleet::make_router("carbon_forecast"),
        [] { return core::make_scheduler(core::PolicyKind::kForecastCarbon); });
    if (recorder != nullptr) fleet.set_recorder(recorder);
    fleet.run_until(TimePoint::from_seconds(0.0) + util::days(30));
    fleet.drain_migrations();
    return fleet.summary();
  };
  const telemetry::FleetRunSummary plain = run(nullptr);
  FlightRecorder recorder({/*metrics=*/true, /*trace=*/true, /*profile=*/true});
  const telemetry::FleetRunSummary instrumented = run(&recorder);

  EXPECT_EQ(plain.total.jobs_submitted, instrumented.total.jobs_submitted);
  EXPECT_EQ(plain.total.jobs_completed, instrumented.total.jobs_completed);
  EXPECT_EQ(plain.total.jobs_migrated, instrumented.total.jobs_migrated);
  EXPECT_EQ(plain.total.completed_gpu_hours, instrumented.total.completed_gpu_hours);
  EXPECT_EQ(plain.total.mean_queue_wait_hours, instrumented.total.mean_queue_wait_hours);
  EXPECT_EQ(plain.total.grid_totals.energy.joules(),
            instrumented.total.grid_totals.energy.joules());
  EXPECT_EQ(plain.total.grid_totals.carbon.kilograms(),
            instrumented.total.grid_totals.carbon.kilograms());
  EXPECT_EQ(plain.migration.started, instrumented.migration.started);
  EXPECT_EQ(plain.migration.delivered, instrumented.migration.delivered);
  for (std::size_t i = 0; i < plain.regions.size(); ++i) {
    EXPECT_EQ(plain.regions[i].jobs_routed, instrumented.regions[i].jobs_routed) << i;
    EXPECT_EQ(plain.regions[i].jobs_migrated_out, instrumented.regions[i].jobs_migrated_out)
        << i;
  }

  // The trace must hold every decision family and parse cleanly end to end.
  std::stringstream file;
  recorder.trace().write(file);
  const TraceParseResult parsed = summarize_trace(file);
  EXPECT_TRUE(parsed.ok()) << (parsed.errors.empty() ? "" : parsed.errors.front());
  EXPECT_GT(parsed.count_by_cat.at("route"), 0u);
  EXPECT_GT(parsed.count_by_cat.at("sched"), 0u);
  EXPECT_GT(parsed.count_by_cat.at("job.queue"), 0u);
  EXPECT_GT(parsed.count_by_cat.at("job.run"), 0u);
  EXPECT_GT(parsed.count_by_cat.at("phase"), 0u);
  if (instrumented.migration.started > 0) {
    EXPECT_GT(parsed.async_spans.at("migration").count, 0u);
  }
  // Sim-time lanes are deterministic; the counters agree with the summary.
  EXPECT_EQ(recorder.registry().counter("fleet.migrations_started")->value(),
            static_cast<double>(instrumented.migration.started));
}

}  // namespace
}  // namespace greenhpc::obs
