// Unit tests for greenhpc::sim — the event engine and monthly recorders.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/recorder.hpp"

namespace greenhpc::sim {
namespace {

using util::CivilDate;
using util::Duration;
using util::MonthKey;
using util::TimePoint;

TimePoint at(double s) { return TimePoint::from_seconds(s); }

// --- engine ------------------------------------------------------------------

TEST(Engine, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(at(30.0), [&](Simulation&) { order.push_back(3); });
  sim.schedule_at(at(10.0), [&](Simulation&) { order.push_back(1); });
  sim.schedule_at(at(20.0), [&](Simulation&) { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Engine, SimultaneousEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(at(10.0), [&order, i](Simulation&) { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ClockAdvancesToEventTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(at(42.0), [&](Simulation& s) { seen = s.now().seconds_since_epoch(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Engine, RunUntilIsHalfOpen) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(at(10.0), [&](Simulation&) { ++fired; });
  sim.schedule_at(at(20.0), [&](Simulation&) { ++fired; });
  sim.run_until(at(20.0));  // event at exactly 20 must NOT run
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().seconds_since_epoch(), 20.0);
  sim.run_until(at(21.0));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(at(10.0), [](Simulation&) {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(at(5.0), [](Simulation&) {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(util::seconds(-1.0), [](Simulation&) {}), std::invalid_argument);
}

TEST(Engine, ScheduleInIsRelative) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(at(100.0), [&](Simulation& s) {
    s.schedule_in(util::seconds(50.0), [&](Simulation& inner) {
      seen = inner.now().seconds_since_epoch();
    });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 150.0);
}

TEST(Engine, CancelPreventsExecution) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.schedule_at(at(10.0), [&](Simulation&) { ++fired; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, PeriodicEventsFireUntilCancelled) {
  Simulation sim;
  int fired = 0;
  EventId id = 0;
  id = sim.schedule_periodic(at(0.0), util::seconds(10.0), [&](Simulation& s) {
    ++fired;
    if (fired == 5) s.cancel(id);
  });
  sim.run_until(at(1000.0));
  EXPECT_EQ(fired, 5);
}

TEST(Engine, PeriodicEventCadence) {
  Simulation sim;
  std::vector<double> times;
  const EventId id = sim.schedule_periodic(at(5.0), util::seconds(15.0), [&](Simulation& s) {
    times.push_back(s.now().seconds_since_epoch());
  });
  sim.run_until(at(50.0));
  sim.cancel(id);
  EXPECT_EQ(times, (std::vector<double>{5.0, 20.0, 35.0}));
}

TEST(Engine, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void(Simulation&)> recurse = [&](Simulation& s) {
    if (++depth < 10) s.schedule_in(util::seconds(1.0), recurse);
  };
  sim.schedule_at(at(0.0), recurse);
  sim.run_all();
  EXPECT_EQ(depth, 10);
}

TEST(Engine, NullCallbackThrows) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_at(at(1.0), EventFn{}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_periodic(at(1.0), util::seconds(0.0), [](Simulation&) {}),
               std::invalid_argument);
}

TEST(Engine, StartsAtConfiguredTime) {
  Simulation sim(at(5000.0));
  EXPECT_DOUBLE_EQ(sim.now().seconds_since_epoch(), 5000.0);
  EXPECT_THROW(sim.schedule_at(at(4000.0), [](Simulation&) {}), std::invalid_argument);
}

// Regression: cancelling ids that already fired (or never existed) used to
// park them in the cancelled set forever, making pending_events() — computed
// as queue size minus cancelled size — underflow to a huge size_t.
TEST(Engine, CancelAfterFireDoesNotUnderflowPendingEvents) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(sim.schedule_at(at(10.0 + i), [](Simulation&) {}));
  sim.run_until(at(50.0));
  for (const EventId id : ids) sim.cancel(id);  // all already fired
  sim.cancel(9999);                             // bogus id
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule_at(at(100.0), [](Simulation&) {});
  EXPECT_EQ(sim.pending_events(), 1u);
}

// Regression: cancelled entries are pruned when their events are popped, so
// the set cannot grow unboundedly over a long run of cancellations.
TEST(Engine, CancelledEntriesArePrunedOnPop) {
  Simulation sim;
  for (int i = 0; i < 100; ++i) {
    const EventId id = sim.schedule_at(at(10.0 + i), [](Simulation&) {});
    if (i % 2 == 0) sim.cancel(id);
  }
  EXPECT_EQ(sim.pending_events(), 50u);
  sim.run_all();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_processed(), 50u);
}

// Cancelling a periodic train whose current firing already popped (self-
// cancel) must not leave a stale marker behind.
TEST(Engine, SelfCancelledPeriodicLeavesNoResidue) {
  Simulation sim;
  int fired = 0;
  EventId id = 0;
  id = sim.schedule_periodic(at(0.0), util::seconds(10.0), [&](Simulation& s) {
    if (++fired == 3) {
      s.cancel(id);
      // Readable mid-callback: the popped event is not counted, and the
      // self-cancel marker must not make this underflow.
      EXPECT_EQ(s.pending_events(), 0u);
    }
  });
  sim.run_until(at(500.0));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.cancel(id);  // cancelling again is a no-op, not a leak
  EXPECT_EQ(sim.pending_events(), 0u);
}

// A periodic cancelled from outside its own callback (while queued) is
// removed and its marker pruned at the next pop.
TEST(Engine, PeriodicCancelledWhileQueuedIsPruned) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.schedule_periodic(at(0.0), util::seconds(10.0),
                                           [&](Simulation&) { ++fired; });
  sim.run_until(at(25.0));  // fires at 0 and 10 and 20
  EXPECT_EQ(fired, 3);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until(at(100.0));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// --- TimeSeries -----------------------------------------------------------------

TEST(TimeSeriesTest, PushAndRead) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.push(at(0.0), 1.0);
  ts.push(at(10.0), 2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.values()[1], 2.0);
}

TEST(TimeSeriesTest, RejectsNonMonotonicTime) {
  TimeSeries ts;
  ts.push(at(10.0), 1.0);
  EXPECT_THROW(ts.push(at(5.0), 2.0), std::invalid_argument);
}

// --- MonthlyAccumulator -----------------------------------------------------------

TEST(Monthly, TimeWeightedMeanWithinOneMonth) {
  MonthlyAccumulator acc;
  const TimePoint start = util::to_timepoint(CivilDate{2020, 3, 1});
  // 10 units for 1 day, then 20 units for 3 days: mean = (10 + 60)/4 = 17.5.
  acc.add_sample(start, util::days(1), 10.0);
  acc.add_sample(start + util::days(1), util::days(3), 20.0);
  const auto monthly = acc.monthly();
  ASSERT_EQ(monthly.size(), 1u);
  EXPECT_EQ(monthly[0].month, (MonthKey{2020, 3}));
  EXPECT_DOUBLE_EQ(monthly[0].time_weighted_mean, 17.5);
  EXPECT_DOUBLE_EQ(monthly[0].min, 10.0);
  EXPECT_DOUBLE_EQ(monthly[0].max, 20.0);
}

TEST(Monthly, SampleSplitAcrossMonthBoundaryIsExact) {
  MonthlyAccumulator acc;
  // 4 days starting Jan 30, 2021: 2 days in Jan, 2 days in Feb.
  const TimePoint start = util::to_timepoint(CivilDate{2021, 1, 30});
  acc.add_sample(start, util::days(4), 100.0);
  const auto jan = acc.month(MonthKey{2021, 1});
  const auto feb = acc.month(MonthKey{2021, 2});
  ASSERT_TRUE(jan.has_value());
  ASSERT_TRUE(feb.has_value());
  EXPECT_DOUBLE_EQ(jan->integral, 100.0 * 2.0 * 86400.0);
  EXPECT_DOUBLE_EQ(feb->integral, 100.0 * 2.0 * 86400.0);
}

TEST(Monthly, IntegralIsEnergyWhenValueIsPower) {
  MonthlyAccumulator acc;
  const TimePoint start = util::to_timepoint(CivilDate{2020, 6, 1});
  acc.add_sample(start, util::hours(2), 1000.0);  // 1 kW for 2 h
  EXPECT_DOUBLE_EQ(acc.month(MonthKey{2020, 6})->integral, 1000.0 * 7200.0);  // J
}

TEST(Monthly, EventCounting) {
  MonthlyAccumulator acc;
  acc.add_event(util::to_timepoint(CivilDate{2020, 5, 10}));
  acc.add_event(util::to_timepoint(CivilDate{2020, 5, 20}), 2.0);
  acc.add_event(util::to_timepoint(CivilDate{2020, 6, 1}));
  EXPECT_EQ(acc.month(MonthKey{2020, 5})->samples, 3u);
  EXPECT_EQ(acc.month(MonthKey{2020, 6})->samples, 1u);
}

TEST(Monthly, ChronologicalOrderAcrossSparseMonths) {
  MonthlyAccumulator acc;
  acc.add_sample(util::to_timepoint(CivilDate{2021, 9, 1}), util::days(1), 1.0);
  acc.add_sample(util::to_timepoint(CivilDate{2020, 2, 1}), util::days(1), 2.0);
  const auto months = acc.months();
  ASSERT_EQ(months.size(), 2u);
  EXPECT_EQ(months[0], (MonthKey{2020, 2}));
  EXPECT_EQ(months[1], (MonthKey{2021, 9}));
}

TEST(Monthly, MissingMonthIsNullopt) {
  MonthlyAccumulator acc;
  acc.add_sample(util::to_timepoint(CivilDate{2020, 1, 5}), util::days(1), 1.0);
  EXPECT_FALSE(acc.month(MonthKey{2020, 2}).has_value());
}

TEST(Monthly, ZeroDurationIsIgnored) {
  MonthlyAccumulator acc;
  acc.add_sample(util::to_timepoint(CivilDate{2020, 1, 5}), util::seconds(0.0), 99.0);
  EXPECT_TRUE(acc.monthly().empty());
  EXPECT_THROW(acc.add_sample(util::to_timepoint(CivilDate{2020, 1, 5}), util::seconds(-1.0), 1.0),
               std::invalid_argument);
}

TEST(Monthly, MeansAndIntegralsVectorsAlign) {
  MonthlyAccumulator acc;
  acc.add_sample(util::to_timepoint(CivilDate{2020, 1, 5}), util::days(1), 10.0);
  acc.add_sample(util::to_timepoint(CivilDate{2020, 2, 5}), util::days(1), 20.0);
  const auto means = acc.means();
  const auto integrals = acc.integrals();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 10.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
  EXPECT_DOUBLE_EQ(integrals[1], 20.0 * 86400.0);
}

// A year of hourly samples: every monthly mean equals the constant value and
// the integrals add up exactly (conservation property).
TEST(Monthly, YearOfHourlySamplesConserved) {
  MonthlyAccumulator acc;
  const TimePoint start = util::to_timepoint(CivilDate{2020, 1, 1});
  const TimePoint end = util::to_timepoint(CivilDate{2021, 1, 1});
  for (TimePoint t = start; t < end; t += util::hours(1)) acc.add_sample(t, util::hours(1), 5.0);
  const auto monthly = acc.monthly();
  ASSERT_EQ(monthly.size(), 12u);
  double total = 0.0;
  for (const auto& m : monthly) {
    EXPECT_NEAR(m.time_weighted_mean, 5.0, 1e-12);
    total += m.integral;
  }
  EXPECT_NEAR(total, 5.0 * 366.0 * 86400.0, 1.0);  // 2020 is a leap year
}

}  // namespace
}  // namespace greenhpc::sim
