// Unit tests for greenhpc::workload — conferences, demand, arrivals,
// training model, users, inference fleet.

#include <gtest/gtest.h>

#include <cmath>

#include "workload/arrivals.hpp"
#include "workload/conferences.hpp"
#include "workload/demand.hpp"
#include "workload/inference.hpp"
#include "workload/redundancy.hpp"
#include "workload/training_model.hpp"
#include "workload/users.hpp"

namespace greenhpc::workload {
namespace {

using util::CivilDate;
using util::MonthKey;
using util::TimePoint;

// --- conferences -------------------------------------------------------------------

TEST(Conferences, TableCoversFiveAreas) {
  const auto& table = conference_table();
  EXPECT_GE(table.size(), 40u);
  int areas[5] = {};
  for (const Conference& c : table) ++areas[static_cast<int>(c.area)];
  for (int count : areas) EXPECT_GT(count, 0);
}

TEST(Conferences, AllDeadlinesInObservationWindow) {
  for (const Conference& c : conference_table()) {
    for (const CivilDate& d : c.deadlines) {
      EXPECT_GE(d.year, 2020) << c.name;
      EXPECT_LE(d.year, 2021) << c.name;
      EXPECT_GE(d.month, 1) << c.name;
      EXPECT_LE(d.month, 12) << c.name;
      EXPECT_LE(d.day, util::days_in_month(d.year, d.month)) << c.name;
    }
  }
}

TEST(Conferences, KeyVenuesPresent) {
  bool neurips = false, iclr = false, kdd = false;
  for (const Conference& c : conference_table()) {
    if (c.name == "NeurIPS") neurips = true;
    if (c.name == "ICLR") iclr = true;
    if (c.name == "KDD") kdd = true;
  }
  EXPECT_TRUE(neurips && iclr && kdd);
}

TEST(Calendar, MonthlyCountsAndWeights) {
  const DeadlineCalendar cal = DeadlineCalendar::standard();
  int total = 0;
  for (int y : {2020, 2021})
    for (int m = 1; m <= 12; ++m) total += cal.monthly_count(MonthKey{y, m});
  EXPECT_EQ(total, static_cast<int>(cal.deadlines().size()));
  // Weighted concentration exceeds raw count where big venues cluster (the
  // spring-2021 NeurIPS/EMNLP/ICCV window).
  EXPECT_GT(cal.monthly_weight(MonthKey{2021, 5}),
            static_cast<double>(cal.monthly_count(MonthKey{2021, 5})));
}

TEST(Calendar, Spring2021ConcentrationExceeds2020) {
  // The Fig. 5 narrative: "a notable concentration of deadlines" follows the
  // Jan/Feb-2021 pickup.
  const DeadlineCalendar cal = DeadlineCalendar::standard();
  double w20 = 0.0, w21 = 0.0;
  for (int m = 2; m <= 5; ++m) {
    w20 += cal.monthly_weight(MonthKey{2020, m});
    w21 += cal.monthly_weight(MonthKey{2021, m});
  }
  EXPECT_GT(w21, w20 + 3.0);
}

TEST(Calendar, SpanAndEmpty) {
  const DeadlineCalendar cal = DeadlineCalendar::standard();
  const auto span = cal.span();
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->first.year, 2020);
  EXPECT_EQ(span->second.year, 2021);
  EXPECT_FALSE(DeadlineCalendar({}).span().has_value());
}

TEST(Calendar, UniformSpreadPreservesCountAndWeight) {
  const DeadlineCalendar cal = DeadlineCalendar::standard();
  const DeadlineCalendar uniform = cal.spread_uniform();
  EXPECT_EQ(uniform.deadlines().size(), cal.deadlines().size());
  double w_orig = 0.0, w_uniform = 0.0;
  int max_month = 0;
  for (int y : {2020, 2021}) {
    for (int m = 1; m <= 12; ++m) {
      w_orig += cal.monthly_weight(MonthKey{y, m});
      w_uniform += uniform.monthly_weight(MonthKey{y, m});
      max_month = std::max(max_month, uniform.monthly_count(MonthKey{y, m}));
    }
  }
  EXPECT_NEAR(w_orig, w_uniform, 1e-9);
  // Uniform spread: no month holds more than ceil(n/24)+1.
  EXPECT_LE(max_month, static_cast<int>(cal.deadlines().size()) / 24 + 2);
}

TEST(Calendar, WinterShiftPutsEverythingInJanApr) {
  const DeadlineCalendar winter = DeadlineCalendar::standard().concentrate_winter();
  for (const Deadline& d : winter.deadlines()) {
    EXPECT_GE(d.date.month, 1);
    EXPECT_LE(d.date.month, 4);
  }
  EXPECT_EQ(winter.deadlines().size(), DeadlineCalendar::standard().deadlines().size());
}

TEST(Calendar, RollingIsEmpty) {
  EXPECT_TRUE(DeadlineCalendar::standard().rolling().deadlines().empty());
}

TEST(Calendar, RejectsNonPositiveWeights) {
  EXPECT_THROW(DeadlineCalendar({{CivilDate{2020, 5, 1}, 0.0}}), std::invalid_argument);
}

// --- demand -----------------------------------------------------------------------

TEST(Demand, RampPeaksBeforeDeadline) {
  const DeadlineCalendar cal({{CivilDate{2021, 6, 1}, 1.0}});
  const DemandModulator mod(cal);
  const double far_out = mod.deadline_factor(util::to_timepoint(CivilDate{2021, 1, 1}));
  const double peak = mod.deadline_factor(util::to_timepoint(CivilDate{2021, 5, 22}));
  const double after = mod.deadline_factor(util::to_timepoint(CivilDate{2021, 6, 3}));
  EXPECT_NEAR(far_out, 1.0, 1e-6);
  EXPECT_GT(peak, 1.05);
  EXPECT_LT(after, 1.0);  // post-deadline relief dip
}

TEST(Demand, HeavierVenuesPullMoreDemand) {
  const DemandModulator light(DeadlineCalendar({{CivilDate{2021, 6, 1}, 0.5}}));
  const DemandModulator heavy(DeadlineCalendar({{CivilDate{2021, 6, 1}, 3.0}}));
  const TimePoint probe = util::to_timepoint(CivilDate{2021, 5, 22});
  EXPECT_GT(heavy.deadline_factor(probe), light.deadline_factor(probe));
}

TEST(Demand, MultipleDeadlinesStack) {
  const DeadlineCalendar one({{CivilDate{2021, 6, 1}, 1.0}});
  const DeadlineCalendar three({{CivilDate{2021, 6, 1}, 1.0},
                                {CivilDate{2021, 6, 5}, 1.0},
                                {CivilDate{2021, 6, 10}, 1.0}});
  const TimePoint probe = util::to_timepoint(CivilDate{2021, 5, 25});
  EXPECT_GT(DemandModulator(three).deadline_factor(probe),
            DemandModulator(one).deadline_factor(probe));
}

TEST(Demand, CalendarFactorDiurnalAndWeekend) {
  const DemandModulator mod(DeadlineCalendar({}));
  // Wednesday afternoon vs Wednesday pre-dawn.
  const double afternoon = mod.calendar_factor(util::to_timepoint(CivilDate{2020, 5, 6}, 15.0));
  const double predawn = mod.calendar_factor(util::to_timepoint(CivilDate{2020, 5, 6}, 4.0));
  EXPECT_GT(afternoon, predawn);
  // Saturday vs Wednesday, same hour.
  const double saturday = mod.calendar_factor(util::to_timepoint(CivilDate{2020, 5, 9}, 15.0));
  EXPECT_LT(saturday, afternoon);
}

TEST(Demand, FactorStaysPositive) {
  const DemandModulator mod(DeadlineCalendar::standard());
  for (int d = 0; d < 730; d += 3) {
    const double f = mod.factor(TimePoint::from_seconds(d * 86400.0 + 7.3));
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 10.0);
  }
}

// --- arrivals ----------------------------------------------------------------------

TEST(Arrivals, DefaultMixIsValid) {
  const auto mix = default_mix();
  EXPECT_EQ(mix.size(), 5u);
  double weight = 0.0;
  for (const ClassProfile& p : mix) weight += p.weight;
  EXPECT_NEAR(weight, 1.0, 1e-9);
}

TEST(Arrivals, PoissonRateMatchesExpectation) {
  const ArrivalProcess process(ArrivalConfig{}, nullptr);
  util::Rng rng(5);
  double total = 0.0;
  const int windows = 500;
  for (int i = 0; i < windows; ++i)
    total += static_cast<double>(process.sample(TimePoint::from_seconds(i * 3600.0),
                                                util::hours(1), rng).size());
  EXPECT_NEAR(total / windows, 12.0, 0.6);
}

TEST(Arrivals, ModulatorScalesRate) {
  const DemandModulator mod(DeadlineCalendar({{CivilDate{2020, 3, 15}, 3.0}}));
  const ArrivalProcess process(ArrivalConfig{}, &mod);
  // Near the deadline the rate must exceed the base rate.
  const TimePoint busy = util::to_timepoint(CivilDate{2020, 3, 8}, 15.0);  // weekday afternoon
  EXPECT_GT(process.rate_per_hour(busy), 12.0);
}

TEST(Arrivals, RequestsAreWellFormed) {
  const ArrivalProcess process(ArrivalConfig{}, nullptr);
  util::Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const cluster::JobRequest req = process.draw_request(TimePoint::from_seconds(0.0), rng);
    EXPECT_GE(req.gpus, 1);
    EXPECT_LE(req.gpus, 32);
    EXPECT_GE(req.work_gpu_seconds, 60.0);
    EXPECT_GE(req.estimate_factor, 1.0);
    if (req.deadline) {
      EXPECT_TRUE(req.flexible);
    }
  }
}

TEST(Arrivals, ClassMixProportions) {
  const ArrivalProcess process(ArrivalConfig{}, nullptr);
  util::Rng rng(23);
  int debug = 0, training = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto req = process.draw_request(TimePoint::from_seconds(0.0), rng);
    if (req.job_class == cluster::JobClass::kDebug) ++debug;
    if (req.job_class == cluster::JobClass::kTraining) ++training;
  }
  EXPECT_NEAR(static_cast<double>(debug) / n, 0.38, 0.02);
  EXPECT_NEAR(static_cast<double>(training) / n, 0.27, 0.02);
}

TEST(Arrivals, ConfigValidation) {
  ArrivalConfig bad;
  bad.base_rate_per_hour = 0.0;
  EXPECT_THROW(ArrivalProcess(bad, nullptr), std::invalid_argument);
  bad = ArrivalConfig{};
  bad.mix[0].gpu_weights.pop_back();
  EXPECT_THROW(ArrivalProcess(bad, nullptr), std::invalid_argument);
}

// --- training model ---------------------------------------------------------------

TEST(TrainingModel, KaplanFlopsRule) {
  EXPECT_DOUBLE_EQ(TrainingRunModel::estimate_flops(1e9, 2e10), 1.2e20);
  EXPECT_THROW((void)TrainingRunModel::estimate_flops(0.0, 1.0), std::invalid_argument);
}

TEST(TrainingModel, CostRollupConsistency) {
  TrainingRunSpec spec;
  spec.parameters = 1.3e9;
  spec.tokens = 3.0e10;
  spec.gpus = 8;
  const TrainingRunCost cost =
      TrainingRunModel::cost(spec, util::usd_per_mwh(30.0), util::kg_per_kwh(0.3));
  EXPECT_NEAR(cost.total_flops, 6.0 * 1.3e9 * 3.0e10, 1e10);
  EXPECT_NEAR(cost.gpu_hours * 3600.0 * spec.sustained_flops_per_gpu, cost.total_flops, 1e12);
  EXPECT_NEAR(cost.wall_clock.hours() * spec.gpus, cost.gpu_hours, 1e-6);
  EXPECT_NEAR(cost.facility_energy.joules(), cost.it_energy.joules() * spec.pue, 1e-3);
  EXPECT_NEAR(cost.cost.dollars(), cost.facility_energy.megawatt_hours() * 30.0, 1e-9);
  EXPECT_NEAR(cost.carbon.kilograms(), cost.facility_energy.kilowatt_hours() * 0.3, 1e-9);
}

TEST(TrendModel, GPT3ScaleSanity) {
  // GPT-3's 3.14e23 FLOPs should be ~3640 PF/s-days; the landmark list
  // encodes it directly and the energy converter should give megawatt-hours.
  const double kwh = ComputeTrendModel::energy_kwh(3640.0, 20.0);
  EXPECT_GT(kwh, 1.0e6);  // > 1 GWh at facility scale
  EXPECT_LT(kwh, 1.0e8);
}

TEST(TrendModel, EraDoublingTimes) {
  const ComputeTrendModel trend;
  const auto first = trend.first_era();
  const auto modern = trend.modern_era();
  EXPECT_GT(first.doubling_time, 18.0);   // months: ~2-year era
  EXPECT_LT(first.doubling_time, 30.0);
  EXPECT_GT(modern.doubling_time, 2.0);   // months: ~3.4-month era
  EXPECT_LT(modern.doubling_time, 6.0);
  EXPECT_GT(first.r_squared, 0.85);
  EXPECT_GT(modern.r_squared, 0.6);
}

TEST(TrendModel, LandmarksAreChronologicallyPlausible) {
  for (const LandmarkSystem& s : landmark_systems()) {
    EXPECT_GT(s.petaflop_s_days, 0.0) << s.name;
    EXPECT_GE(s.year, 1950.0) << s.name;
    EXPECT_LE(s.year, 2022.0) << s.name;
  }
}

TEST(TrendModel, ProjectionGrowsUnderModernEra) {
  const ComputeTrendModel trend;
  const auto modern = trend.modern_era();
  EXPECT_GT(trend.project(modern, 2020.0), trend.project(modern, 2018.0));
}

// --- users -------------------------------------------------------------------------

TEST(Users, GenerationRespectsConfig) {
  util::Rng rng(31);
  PopulationConfig config;
  config.user_count = 500;
  config.strategic_fraction = 0.4;
  const UserPopulation pop = UserPopulation::generate(config, rng);
  EXPECT_EQ(pop.size(), 500u);
  int strategic = 0;
  for (const UserProfile& u : pop.users()) {
    EXPECT_GE(u.patience, config.min_patience);
    EXPECT_LE(u.patience, config.max_patience);
    EXPECT_GE(u.green_preference, 0.0);
    EXPECT_LE(u.green_preference, 1.0);
    if (u.honesty < 0.5) ++strategic;
  }
  EXPECT_NEAR(static_cast<double>(strategic) / 500.0, 0.4, 0.07);
}

TEST(Users, ActivityWeightedSampling) {
  util::Rng rng(37);
  PopulationConfig config;
  config.user_count = 50;
  const UserPopulation pop = UserPopulation::generate(config, rng);
  // The most active user should be sampled more often than the least active.
  std::vector<int> hits(50, 0);
  for (int i = 0; i < 20000; ++i) ++hits[pop.sample_user(rng)];
  cluster::UserId most_active = 0, least_active = 0;
  for (cluster::UserId u = 1; u < 50; ++u) {
    if (pop.user(u).activity > pop.user(most_active).activity) most_active = u;
    if (pop.user(u).activity < pop.user(least_active).activity) least_active = u;
  }
  EXPECT_GT(hits[most_active], hits[least_active]);
}

TEST(Users, MeansAndLookup) {
  util::Rng rng(41);
  const UserPopulation pop = UserPopulation::generate(PopulationConfig{}, rng);
  EXPECT_GT(pop.mean_green_preference(), 0.3);
  EXPECT_LT(pop.mean_green_preference(), 0.7);
  EXPECT_GT(pop.mean_honesty(), 0.4);
  EXPECT_THROW((void)pop.user(static_cast<cluster::UserId>(pop.size())), std::invalid_argument);
}

// --- inference ---------------------------------------------------------------------

TEST(Inference, ProvisionedForPeakWithHeadroom) {
  const InferenceFleet fleet;
  const auto& spec = fleet.spec();
  EXPECT_GE(fleet.provisioned_replicas() * spec.qps_per_replica, spec.peak_qps * spec.headroom);
}

TEST(Inference, UtilizationInPaperBand) {
  // Sec. IV-B: "AWS reports p3 GPU instances at only 10%-30% utilization."
  const InferenceFleet fleet;
  const auto cost = fleet.serve(util::to_timepoint(CivilDate{2021, 1, 1}),
                                util::to_timepoint(CivilDate{2021, 2, 1}));
  EXPECT_GE(cost.average_utilization, 0.10);
  EXPECT_LE(cost.average_utilization, 0.35);
}

TEST(Inference, DiurnalDemandShape) {
  const InferenceFleet fleet;
  const double peak_hour = fleet.qps_at(util::to_timepoint(CivilDate{2021, 3, 3}, 20.0));
  const double trough_hour = fleet.qps_at(util::to_timepoint(CivilDate{2021, 3, 3}, 8.0));
  EXPECT_GT(peak_hour, trough_hour);
  EXPECT_LE(peak_hour, fleet.spec().peak_qps * 1.001);
}

TEST(Inference, EnergyScalesWithWindow) {
  const InferenceFleet fleet;
  const TimePoint start = util::to_timepoint(CivilDate{2021, 1, 1});
  const auto week = fleet.serve(start, start + util::days(7));
  const auto fortnight = fleet.serve(start, start + util::days(14));
  EXPECT_NEAR(fortnight.it_energy.joules() / week.it_energy.joules(), 2.0, 0.05);
  EXPECT_GT(week.energy_per_1k_queries.joules(), 0.0);
}

TEST(Inference, SpecValidation) {
  InferenceFleetSpec bad;
  bad.headroom = 0.5;
  EXPECT_THROW(InferenceFleet{bad}, std::invalid_argument);
  bad = InferenceFleetSpec{};
  bad.replica_busy = util::watts(50.0);  // below idle
  EXPECT_THROW(InferenceFleet{bad}, std::invalid_argument);
}

// --- domains (the paper's future-work breakdown) ------------------------------------

TEST(Domains, AreaWeightsShiftTowardUpcomingDeadlineArea) {
  // A single heavyweight NLP deadline: NLP's weight share near the date must
  // exceed its base share far from any deadline.
  const DeadlineCalendar cal({{CivilDate{2021, 6, 1}, 3.0, Area::kNlpSpeech}});
  const DemandModulator mod(cal);
  const auto near = mod.area_weights(util::to_timepoint(CivilDate{2021, 5, 22}));
  const auto far = mod.area_weights(util::to_timepoint(CivilDate{2021, 1, 10}));
  auto share = [](const std::array<double, 5>& w, Area a) {
    double total = 0.0;
    for (double v : w) total += v;
    return w[static_cast<std::size_t>(a)] / total;
  };
  EXPECT_GT(share(near, Area::kNlpSpeech), share(far, Area::kNlpSpeech) + 0.05);
}

TEST(Domains, ArrivalsTagJobsWhenModulated) {
  const DemandModulator mod(DeadlineCalendar::standard());
  const ArrivalProcess process(ArrivalConfig{}, &mod);
  util::Rng rng(51);
  std::array<int, 5> counts{};
  for (int i = 0; i < 3000; ++i) {
    const auto req = process.draw_request(util::to_timepoint(CivilDate{2021, 5, 10}), rng);
    ASSERT_LT(req.domain, 5);  // tagged
    ++counts[req.domain];
  }
  for (int c : counts) EXPECT_GT(c, 0);  // every area appears
}

TEST(Domains, UnmodulatedArrivalsStayUntagged) {
  const ArrivalProcess process(ArrivalConfig{}, nullptr);
  util::Rng rng(53);
  const auto req = process.draw_request(util::to_timepoint(CivilDate{2021, 5, 10}), rng);
  EXPECT_EQ(req.domain, cluster::kNoDomain);
}

// --- redundancy (Sec. IV-A) -----------------------------------------------------------

TEST(Redundancy, PerfectReproducibilityWastesOnlyAvoidableSweep) {
  RedundancyParams params;
  params.reproduction_success_rate = 1.0;
  const ProjectWaste waste = project_waste(params);
  EXPECT_NEAR(waste.expected_attempts, 1.0, 1e-9);
  EXPECT_NEAR(waste.expected_failed_runs, 0.0, 1e-9);
  EXPECT_NEAR(waste.wasted.kilowatt_hours(),
              params.avoidable_sweep_fraction * params.sweep_size *
                  params.energy_per_run.kilowatt_hours(),
              1e-6);
}

TEST(Redundancy, ExpectedAttemptsMatchesTruncatedGeometric) {
  RedundancyParams params;
  params.reproduction_success_rate = 0.5;
  params.max_attempts = 3;
  // E = 1*0.5 + 2*0.25 + 3*0.125 + 3*0.125 (give-up) = 1.75.
  EXPECT_NEAR(project_waste(params).expected_attempts, 1.75, 1e-9);
}

TEST(Redundancy, WasteMonotoneInReproducibility) {
  RedundancyParams params;
  double prev = 1e18;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    params.reproduction_success_rate = p;
    const double wasted = project_waste(params).wasted.kilowatt_hours();
    EXPECT_LT(wasted, prev) << "p=" << p;
    prev = wasted;
  }
}

TEST(Redundancy, CommunityScalesLinearly) {
  const RedundancyParams params;
  const CommunityWaste one =
      community_waste(params, 1.0, util::usd_per_mwh(30.0), util::kg_per_kwh(0.3));
  const CommunityWaste thousand =
      community_waste(params, 1000.0, util::usd_per_mwh(30.0), util::kg_per_kwh(0.3));
  EXPECT_NEAR(thousand.wasted.joules(), 1000.0 * one.wasted.joules(), 1e-3);
  EXPECT_GT(one.wasted_carbon.kilograms(), 0.0);
  EXPECT_GT(one.wasted_cost.dollars(), 0.0);
}

TEST(Redundancy, ReportingDividendPositiveAndBounded) {
  const RedundancyParams params;
  const util::Energy dividend = reporting_dividend(params, 0.9);
  EXPECT_GT(dividend.kilowatt_hours(), 0.0);
  EXPECT_LE(dividend.joules(), project_waste(params).wasted.joules() + 1e-6);
}

TEST(Redundancy, Validation) {
  RedundancyParams bad;
  bad.reproduction_success_rate = 0.0;
  EXPECT_THROW((void)project_waste(bad), std::invalid_argument);
  const RedundancyParams params;
  EXPECT_THROW((void)reporting_dividend(params, 0.1), std::invalid_argument);
  EXPECT_THROW((void)community_waste(params, -1.0, util::usd_per_mwh(30.0),
                                     util::kg_per_kwh(0.3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace greenhpc::workload
