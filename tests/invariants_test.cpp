// Debug invariant layer (src/util/invariants.hpp): every guarded identity
// must (a) hold on clean runs and (b) actually fire when its state is
// corrupted. Each trip test uses a debug seam that skews the *real* served
// state the check guards — the incremental busy counter, the accountant's
// running totals, the forecaster's prefix-sum cache, the coordinator's
// transfer mirror — so a check that silently stopped comparing anything
// fails here, not in production triage.
//
// The whole suite is a skip in release builds: the layer is compiled out
// with GREENHPC_CHECK_INVARIANTS=OFF, and that absence is itself asserted
// (kInvariantsEnabled).

#include <gtest/gtest.h>

#include <memory>
#include <numbers>
#include <string>

#include "util/invariants.hpp"

#ifndef GREENHPC_CHECK_INVARIANTS

TEST(Invariants, CompiledOutInReleaseBuilds) {
  static_assert(!greenhpc::util::kInvariantsEnabled);
  GTEST_SKIP() << "built with GREENHPC_CHECK_INVARIANTS=OFF — invariant layer compiled out";
}

#else  // GREENHPC_CHECK_INVARIANTS

#include <cmath>

#include "cluster/job.hpp"
#include "core/datacenter.hpp"
#include "fleet/coordinator.hpp"
#include "forecast/bank.hpp"
#include "obs/recorder.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/fleet.hpp"
#include "util/units.hpp"

namespace greenhpc {
namespace {

static_assert(util::kInvariantsEnabled);

/// Runs `fn` and asserts it throws InvariantViolation naming exactly `check`.
template <typename Fn>
void expect_violation(Fn&& fn, const std::string& check) {
  try {
    fn();
    FAIL() << "expected InvariantViolation '" << check << "', nothing thrown";
  } catch (const util::InvariantViolation& e) {
    EXPECT_EQ(e.check(), check) << e.what();
  }
}

std::unique_ptr<core::Datacenter> reference_twin(std::uint64_t seed = 42) {
  return core::make_reference_datacenter(std::make_unique<sched::FcfsScheduler>(), seed);
}

// --- clean runs --------------------------------------------------------------

TEST(Invariants, CleanSingleSiteRunPassesEveryCheck) {
  auto dc = reference_twin();
  // The periodic in-step hook already ran every kInvariantPeriod steps; a
  // direct call at the end re-validates the final state.
  dc->run_until(util::TimePoint::from_seconds(2.0 * 86400.0));
  EXPECT_NO_THROW(dc->check_invariants());
}

TEST(Invariants, CleanFleetRunPassesEveryCheck) {
  auto fleet = fleet::make_reference_fleet_coordinator("carbon_forecast", 42, 3);
  fleet->run_until(fleet->now() + util::days(1));
  EXPECT_NO_THROW(fleet->check_invariants());
}

// --- cluster -----------------------------------------------------------------

TEST(Invariants, ClusterBusyRecountTrips) {
  auto dc = reference_twin();
  dc->run_until(util::TimePoint::from_seconds(86400.0));
  dc->debug_cluster().debug_corrupt_busy_total(2);
  expect_violation([&] { dc->check_invariants(); }, "cluster.busy_recount");
}

// --- accountant --------------------------------------------------------------

TEST(Invariants, AccountantLedgerIdentityTrips) {
  auto dc = reference_twin();
  dc->run_until(util::TimePoint::from_seconds(86400.0));
  dc->debug_accountant().debug_corrupt_totals(util::kilowatt_hours(1.0));
  expect_violation([&] { dc->check_invariants(); }, "accountant.ledger_identity");
}

// --- datacenter --------------------------------------------------------------

TEST(Invariants, QueuedGpuDemandTrips) {
  auto dc = reference_twin();
  dc->debug_corrupt_queued_gpu_demand(3);
  expect_violation([&] { dc->check_invariants(); }, "datacenter.queued_demand");
}

TEST(Invariants, PendingIndexAgreementTrips) {
  auto dc = reference_twin();
  cluster::JobRequest req;
  req.gpus = 2;
  dc->submit(req);  // queued until the next step, so the index holds it now
  EXPECT_NO_THROW(dc->check_invariants());
  dc->debug_unindex_queued_job();
  expect_violation([&] { dc->check_invariants(); }, "datacenter.pending_index");
}

TEST(Invariants, PeriodicHookFiresInsideStep) {
  auto dc = reference_twin();
  dc->debug_corrupt_queued_gpu_demand(5);
  // No direct call: the corruption must surface from the every-N-steps hook
  // inside Datacenter::step.
  EXPECT_THROW(dc->run_until(util::TimePoint::from_seconds(86400.0)),
               util::InvariantViolation);
}

// --- forecaster bank ---------------------------------------------------------

TEST(Invariants, ForecasterPrefixIntegralTrips) {
  forecast::RollingForecasterConfig config;
  config.horizon = util::hours(1);
  forecast::ForecasterBank bank(config);
  // Two days of a clean diurnal at 15-minute cadence: fits, passes the
  // reliability gate, and the first integral query builds the prefix cache.
  auto t = util::TimePoint::from_seconds(0.0);
  for (int i = 0; i < 2 * 96; ++i) {
    const double hours = t.seconds_since_epoch() / 3600.0;
    bank.observe(t, 0, 0.30 + 0.05 * std::sin(2.0 * std::numbers::pi * hours / 24.0), "r0");
    t = t + util::minutes(15);
  }
  ASSERT_NE(bank.forecaster(0), nullptr);
  ASSERT_TRUE(bank.forecaster(0)->reliable());
  (void)bank.integrated_signal(0, util::hours(1), 0.0);  // prime the cache
  EXPECT_NO_THROW(bank.check_invariants());
  bank.debug_corrupt_prefix(0);
  expect_violation([&] { bank.check_invariants(); }, "forecaster_bank.prefix_integral");
}

// --- fleet coordinator -------------------------------------------------------

TEST(Invariants, FleetTransferMirrorTrips) {
  auto fleet = fleet::make_reference_fleet_coordinator("carbon_forecast", 42, 3);
  fleet->run_until(fleet->now() + util::hours(6));
  fleet->debug_corrupt_transfer_mirror();
  expect_violation([&] { fleet->check_invariants(); }, "fleet.transfer_mirror");
}

TEST(Invariants, FleetMigrationAccountingTrips) {
  auto fleet = fleet::make_reference_fleet_coordinator("carbon_forecast", 42, 3);
  fleet->debug_count_phantom_routed();
  expect_violation([&] { fleet->check_invariants(); }, "fleet.migration_accounting");
}

TEST(Invariants, FleetFootprintIdentityTrips) {
  auto fleet = fleet::make_reference_fleet_coordinator("carbon_forecast", 42, 3);
  fleet->run_until(fleet->now() + util::days(1));
  EXPECT_NO_THROW(fleet->check_invariants());

  struct Disarm {
    ~Disarm() { telemetry::debug_skew_fleet_transfer(false); }
  } disarm;  // process-global seam: never leak into other tests
  telemetry::debug_skew_fleet_transfer(true);
  expect_violation([&] { fleet->check_invariants(); }, "fleet.footprint_identity");
}

// --- attribution ledger ------------------------------------------------------

TEST(Invariants, CleanAttributedRunsPassEveryCheck) {
  obs::FlightRecorderConfig rc;
  rc.attribution = true;
  obs::FlightRecorder recorder(rc);
  auto dc = reference_twin();
  dc->set_recorder(&recorder);
  // The periodic hook inside step() exercises direct/residual identity all
  // the way down; the direct calls re-validate the final state.
  dc->run_until(util::TimePoint::from_seconds(2.0 * 86400.0));
  EXPECT_NO_THROW(dc->check_invariants());

  obs::FlightRecorder fleet_recorder(rc);
  auto fleet = fleet::make_reference_fleet_coordinator("carbon_forecast", 42, 3);
  fleet->set_recorder(&fleet_recorder);
  fleet->run_until(fleet->now() + util::days(1));
  EXPECT_NO_THROW(fleet->check_invariants());
}

TEST(Invariants, AttributionDirectIdentityTrips) {
  obs::FlightRecorderConfig rc;
  rc.attribution = true;
  obs::FlightRecorder recorder(rc);
  auto dc = reference_twin();
  dc->set_recorder(&recorder);
  dc->run_until(util::TimePoint::from_seconds(86400.0));
  EXPECT_NO_THROW(dc->check_invariants());
  recorder.attribution().sink(0)->debug_skew_direct(util::kilowatt_hours(1.0));
  expect_violation([&] { dc->check_invariants(); }, "attribution.direct_identity");
}

TEST(Invariants, AttributionConservationTrips) {
  obs::FlightRecorderConfig rc;
  rc.attribution = true;
  obs::FlightRecorder recorder(rc);
  auto fleet = fleet::make_reference_fleet_coordinator("carbon_forecast", 42, 3);
  fleet->set_recorder(&recorder);
  fleet->run_until(fleet->now() + util::days(1));
  EXPECT_NO_THROW(fleet->check_invariants());
  // Skew one region's direct total: the fleet-level headline identity
  // (direct + overhead == accountant + transfer) must trip.
  recorder.attribution().sink(1)->debug_skew_direct(util::kilowatt_hours(1.0));
  expect_violation([&] { fleet->check_invariants(); }, "attribution.conservation");
}

TEST(Invariants, FleetPeriodicHookFiresInsideRunUntil) {
  auto fleet = fleet::make_reference_fleet_coordinator("carbon_forecast", 42, 3);
  fleet->debug_corrupt_transfer_mirror();
  EXPECT_THROW(fleet->run_until(fleet->now() + util::days(1)), util::InvariantViolation);
}

}  // namespace
}  // namespace greenhpc

#endif  // GREENHPC_CHECK_INVARIANTS
