// Unit tests for greenhpc::fleet — region profiles, routing policies, and
// the multi-datacenter coordinator.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "fleet/coordinator.hpp"
#include "fleet/forecast_router.hpp"
#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "telemetry/fleet.hpp"
#include "util/rng.hpp"

namespace greenhpc::fleet {
namespace {

using util::TimePoint;

cluster::JobRequest job(int gpus, double work_gpu_seconds = 3600.0) {
  cluster::JobRequest r;
  r.gpus = gpus;
  r.work_gpu_seconds = work_gpu_seconds;
  return r;
}

RegionView view(std::size_t index, int free_gpus, double carbon_kg_per_kwh,
                double price_usd_mwh = 30.0, bool is_home = false) {
  RegionView v;
  v.index = index;
  v.is_home = is_home;
  v.total_gpus = 64;
  v.free_gpus = free_gpus;
  v.busy_gpu_power = util::watts(300.0);
  v.price = util::usd_per_mwh(price_usd_mwh);
  v.carbon = util::kg_per_kwh(carbon_kg_per_kwh);
  return v;
}

RoutingContext context(std::span<const RegionView> regions,
                       util::Energy transfer = util::Energy{}) {
  RoutingContext ctx;
  ctx.now = TimePoint::from_seconds(0.0);
  ctx.regions = regions;
  ctx.transfer_energy = transfer;
  return ctx;
}

// --- region profiles ---------------------------------------------------------

TEST(ReferenceFleet, HasFourDistinctRegions) {
  const std::vector<RegionProfile> fleet = make_reference_fleet();
  ASSERT_EQ(fleet.size(), 4u);
  EXPECT_EQ(fleet[0].name, "iso-ne");
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (std::size_t j = i + 1; j < fleet.size(); ++j) {
      EXPECT_NE(fleet[i].name, fleet[j].name);
    }
  }
  EXPECT_GT(fleet_total_gpus(fleet), 448);  // more than the single reference site
}

TEST(ReferenceFleet, HydroRegionIsCleanestErcotHottest) {
  const std::vector<RegionProfile> fleet = make_reference_fleet();
  std::vector<double> intensity;  // January monthly mean, g/kWh
  std::vector<double> july_temp;
  for (const RegionProfile& p : fleet) {
    grid::FuelMixModel mix(p.fuel_mix);
    grid::CarbonIntensityModel carbon(&mix, p.emissions);
    intensity.push_back(carbon.monthly_average(util::MonthKey{2021, 1}).g_per_kwh());
    thermal::WeatherModel weather(p.weather);
    july_temp.push_back(weather.monthly_average(util::MonthKey{2021, 7}).celsius());
  }
  // columbia-hydro (index 2) is the least carbon-intensive of the fleet.
  EXPECT_LT(intensity[2], intensity[0]);
  EXPECT_LT(intensity[2], intensity[1]);
  EXPECT_LT(intensity[2], intensity[3]);
  // ercot (index 1) has the hottest summers.
  EXPECT_GT(july_temp[1], july_temp[0]);
  EXPECT_GT(july_temp[1], july_temp[2]);
  EXPECT_GT(july_temp[1], july_temp[3]);
}

// --- routers -----------------------------------------------------------------

TEST(Routers, FactoryKnowsAllNamesAndRejectsUnknown) {
  for (const char* name : {"round_robin", "least_loaded", "cost_greedy", "carbon_greedy",
                           "cost_forecast", "carbon_forecast"}) {
    const auto router = make_router(name);
    ASSERT_NE(router, nullptr) << name;
    EXPECT_STREQ(router->name(), name);
    EXPECT_NE(std::string(router_names()).find(name), std::string::npos);
  }
  EXPECT_EQ(make_router("teleport"), nullptr);
  EXPECT_THROW((void)make_router("carbon_forecast", "oracle", util::hours(24)),
               std::invalid_argument);
}

TEST(Routers, RoundRobinCycles) {
  RoundRobinRouter router;
  const std::vector<RegionView> regions = {view(0, 8, 0.3), view(1, 8, 0.3), view(2, 8, 0.3)};
  const RoutingContext ctx = context(regions);
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(router.route(job(1), ctx));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Routers, LeastLoadedPicksLowestPressure) {
  LeastLoadedRouter router;
  std::vector<RegionView> regions = {view(0, 8, 0.3), view(1, 40, 0.3), view(2, 20, 0.3)};
  regions[1].queued_gpu_demand = 0;   // pressure (64-40)/64 = 0.375
  regions[0].queued_gpu_demand = 10;  // pressure (56+10)/64 ~ 1.03
  regions[2].queued_gpu_demand = 4;   // pressure (44+4)/64 = 0.75
  EXPECT_EQ(router.route(job(1), context(regions)), 1u);
}

TEST(Routers, CostGreedyPicksCheapestThatFits) {
  CostGreedyRouter router;
  const std::vector<RegionView> regions = {
      view(0, 8, 0.3, 40.0), view(1, 0, 0.3, 10.0),  // cheapest but full
      view(2, 8, 0.3, 20.0)};
  EXPECT_EQ(router.route(job(4), context(regions)), 2u);
}

TEST(Routers, CostGreedyTransferPenaltySteersHome) {
  CostGreedyRouter router;
  // Remote is slightly cheaper per MWh, but the transfer surcharge flips it.
  const std::vector<RegionView> regions = {view(0, 8, 0.3, 30.0, /*is_home=*/true),
                                           view(1, 8, 0.3, 29.0)};
  EXPECT_EQ(router.route(job(1), context(regions)), 1u);  // no penalty: remote wins
  EXPECT_EQ(router.route(job(1), context(regions, util::kilowatt_hours(50.0))), 0u);
}

TEST(Routers, GreedyFallsBackToLeastPressureWhenFull) {
  CarbonGreedyRouter router;
  std::vector<RegionView> regions = {view(0, 0, 0.1), view(1, 2, 0.5)};
  regions[0].queued_gpu_demand = 30;
  regions[1].queued_gpu_demand = 0;
  // Job needs 4 GPUs; nobody fits. Region 1 has far less committed demand.
  EXPECT_EQ(router.route(job(4), context(regions)), 1u);
}

// Property: with no transfer penalty, CarbonGreedyRouter never routes to a
// region with strictly higher carbon intensity when an equally-free
// lower-carbon region exists.
TEST(Routers, CarbonGreedyNeverPicksDirtierWhenCleanerFits) {
  CarbonGreedyRouter router;
  util::Rng rng(20210301);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto region_count = static_cast<std::size_t>(rng.uniform_int(2, 6));
    std::vector<RegionView> regions;
    for (std::size_t i = 0; i < region_count; ++i) {
      RegionView v = view(i, static_cast<int>(rng.uniform_int(0, 16)),
                          rng.uniform(0.05, 0.9), rng.uniform(10.0, 60.0));
      v.queued_gpu_demand = static_cast<int>(rng.uniform_int(0, 20));
      regions.push_back(v);
    }
    const cluster::JobRequest request = job(static_cast<int>(rng.uniform_int(1, 8)),
                                            rng.uniform(600.0, 7.2e4));
    const std::size_t pick = router.route(request, context(regions));
    ASSERT_LT(pick, regions.size());
    if (!regions[pick].fits(request.gpus)) {
      // Fallback is allowed only when no region fits.
      for (const RegionView& r : regions) ASSERT_FALSE(r.fits(request.gpus)) << "trial " << trial;
      continue;
    }
    for (const RegionView& r : regions) {
      if (r.index == pick || !r.fits(request.gpus)) continue;
      ASSERT_GE(r.carbon.kg_per_kwh(), regions[pick].carbon.kg_per_kwh())
          << "trial " << trial << ": routed to dirtier region " << pick << " over " << r.index;
    }
  }
}

// --- coordinator -------------------------------------------------------------

std::unique_ptr<FleetCoordinator> small_fleet(std::uint64_t seed, const char* router,
                                              double transfer_kwh = 0.0,
                                              std::size_t region_count = 3) {
  std::vector<RegionProfile> profiles = make_reference_fleet();
  profiles.resize(region_count);
  FleetConfig config;
  config.seed = seed;
  config.arrivals.base_rate_per_hour = scaled_fleet_rate(profiles);
  config.transfer_energy_per_job = util::kilowatt_hours(transfer_kwh);
  return std::make_unique<FleetCoordinator>(std::move(config), std::move(profiles),
                                            make_router(router));
}

// --- forecast routers --------------------------------------------------------

TEST(ForecastRouter, MatchesInstantaneousGreedyBeforeWarmup) {
  // With no history the per-region forecasters are not ready, so every
  // integrated score degrades to the instantaneous signal and the picks
  // match carbon_greedy exactly.
  ForecastRouter router(ForecastRouter::Objective::kCarbon);
  CarbonGreedyRouter greedy;
  const std::vector<RegionView> regions = {view(0, 8, 0.30), view(1, 8, 0.12),
                                           view(2, 8, 0.45)};
  EXPECT_EQ(router.route(job(4), context(regions)), greedy.route(job(4), context(regions)));
  EXPECT_EQ(router.route(job(4), context(regions)), 1u);
}

TEST(ForecastRouter, CostObjectiveScoresByPrice) {
  ForecastRouter router(ForecastRouter::Objective::kCost);
  const std::vector<RegionView> regions = {view(0, 8, 0.1, 40.0), view(1, 8, 0.5, 15.0)};
  EXPECT_EQ(router.route(job(2), context(regions)), 1u);
}

TEST(ForecastRouter, IntegratedSignalFollowsPredictedWindow) {
  // Feed region 0 a strongly diurnal signal for three days, then ask for the
  // integrated mean over windows ending in very different phases.
  ForecastRouter router(ForecastRouter::Objective::kCarbon);
  std::vector<RegionView> regions = {view(0, 8, 0.30)};
  TimePoint t = TimePoint::from_seconds(0.0);
  for (int i = 0; i < 3 * 96; ++i) {
    const double hours = t.seconds_since_epoch() / 3600.0;
    regions[0].carbon = util::kg_per_kwh(
        0.30 + 0.10 * std::sin(2.0 * std::numbers::pi * hours / 24.0));
    router.observe(t, regions);
    t = t + util::minutes(15);
  }
  // t is now at phase 0 (rising limb): a 6-hour window climbs toward the
  // peak, so its integrated mean must sit clearly above "now"; a 1-step
  // window stays near it.
  const double now_val = 0.30;
  const double short_mean = router.integrated_signal(0, util::minutes(15), now_val);
  const double long_mean = router.integrated_signal(0, util::hours(6), now_val);
  EXPECT_NEAR(short_mean, now_val, 0.02);
  EXPECT_GT(long_mean, now_val + 0.03);
  // An unknown region index falls back to the instantaneous value.
  EXPECT_DOUBLE_EQ(router.integrated_signal(7, util::hours(6), 0.42), 0.42);
}

TEST(ForecastRouter, FullFleetFallbackPrefersGreenerNearTieBacklog) {
  // No region fits. Pressures are within 10% of each other, so the forecast
  // fallback may pick the greener backlog; carbon_greedy's least-pressure
  // fallback would take region 0.
  ForecastRouter router(ForecastRouter::Objective::kCarbon);
  std::vector<RegionView> regions = {view(0, 0, 0.40), view(1, 0, 0.10)};
  regions[0].queued_gpu_demand = 8;   // pressure (64+8)/64 = 1.125
  regions[1].queued_gpu_demand = 12;  // pressure (64+12)/64 ~ 1.19 (within 10%)
  EXPECT_EQ(router.route(job(4), context(regions)), 1u);
  CarbonGreedyRouter greedy;
  EXPECT_EQ(greedy.route(job(4), context(regions)), 0u);
  // Outside the near-tie band the backlog balance wins again.
  regions[1].queued_gpu_demand = 40;  // pressure ~1.63
  EXPECT_EQ(router.route(job(4), context(regions)), 0u);
}

TEST(ForecastRouter, SkillsReportOnePerObservedRegion) {
  ForecastRouter router(ForecastRouter::Objective::kCarbon);
  std::vector<RegionView> regions = {view(0, 8, 0.3), view(1, 8, 0.2)};
  regions[0].name = "alpha";
  regions[1].name = "beta";
  TimePoint t = TimePoint::from_seconds(0.0);
  for (int i = 0; i < 10; ++i) {
    router.observe(t, regions);
    t = t + util::minutes(15);
  }
  const auto skills = router.skills();
  ASSERT_EQ(skills.size(), 2u);
  EXPECT_EQ(skills[0].signal, "alpha");
  EXPECT_EQ(skills[1].signal, "beta");
  EXPECT_EQ(skills[0].samples, 10u);
  EXPECT_FALSE(skills[0].reliable);  // not enough history to fit yet
}

TEST(ForecastRouter, CoordinatorFeedsSignalsEveryStep) {
  // The coordinator must observe() the router each control step even when no
  // job arrives, so the forecasters see a gap-free stream.
  auto owner = std::make_unique<ForecastRouter>(ForecastRouter::Objective::kCarbon);
  const ForecastRouter* router = owner.get();
  std::vector<RegionProfile> profiles = make_reference_fleet();
  profiles.resize(2);
  FleetConfig config;
  config.arrivals.base_rate_per_hour = 1e-4;  // near-silence: observations dominate
  FleetCoordinator coordinator(config, std::move(profiles), std::move(owner));
  coordinator.run_until(TimePoint::from_seconds(48.0 * 3600.0));
  const auto skills = router->skills();
  ASSERT_EQ(skills.size(), 2u);
  // 48 h at the 15-minute default step = 192 observations per region.
  EXPECT_EQ(skills[0].samples, 192u);
  EXPECT_EQ(skills[1].samples, 192u);
}

TEST(Coordinator, SharedForecasterHubMatchesPrivateBanksBitForBit) {
  // The tentpole equivalence: the coordinator-owned forecaster hub (one
  // observe/refit/skill pass per region-signal per step, shared by the
  // forecast router and the migration planner) must produce the exact run
  // the old private-bank wiring produced — same routing, same migrations,
  // same bits — over a 90-day flagship window.
  const auto run = [](bool share) {
    std::vector<RegionProfile> profiles = make_reference_fleet();
    FleetConfig config;
    config.seed = 99;
    config.share_forecasters = share;
    config.arrivals.base_rate_per_hour = scaled_fleet_rate(profiles, 14.0);
    config.migration.objective = migrate::MigrationObjective::kCarbon;
    FleetCoordinator fleet(config, std::move(profiles), make_router("carbon_forecast"));
    EXPECT_EQ(fleet.forecaster_hub() != nullptr, share);
    if (share) {
      // Router and planner both forecast carbon with one config: one bank.
      EXPECT_EQ(fleet.forecaster_hub()->banks_created(), 1u);
    }
    fleet.run_until(TimePoint::from_seconds(0.0) + util::days(90));
    return fleet.summary();
  };
  const telemetry::FleetRunSummary shared = run(true);
  const telemetry::FleetRunSummary isolated = run(false);

  ASSERT_GT(shared.migration.started, 0u) << "flagship window moved nothing";
  EXPECT_EQ(shared.total.jobs_submitted, isolated.total.jobs_submitted);
  EXPECT_EQ(shared.total.jobs_completed, isolated.total.jobs_completed);
  EXPECT_EQ(shared.total.jobs_migrated, isolated.total.jobs_migrated);
  EXPECT_EQ(shared.total.completed_gpu_hours, isolated.total.completed_gpu_hours);
  EXPECT_EQ(shared.total.mean_queue_wait_hours, isolated.total.mean_queue_wait_hours);
  EXPECT_EQ(shared.total.grid_totals.energy.joules(), isolated.total.grid_totals.energy.joules());
  EXPECT_EQ(shared.total.grid_totals.carbon.kilograms(),
            isolated.total.grid_totals.carbon.kilograms());
  EXPECT_EQ(shared.total.grid_totals.cost.dollars(), isolated.total.grid_totals.cost.dollars());
  EXPECT_EQ(shared.migration.started, isolated.migration.started);
  EXPECT_EQ(shared.migration.delivered, isolated.migration.delivered);
  EXPECT_EQ(shared.migration.gpu_hours_moved, isolated.migration.gpu_hours_moved);
  EXPECT_EQ(shared.migration.predicted_saving, isolated.migration.predicted_saving);
  EXPECT_EQ(shared.transfer.energy.joules(), isolated.transfer.energy.joules());
  for (std::size_t i = 0; i < shared.regions.size(); ++i) {
    EXPECT_EQ(shared.regions[i].jobs_routed, isolated.regions[i].jobs_routed) << i;
    EXPECT_EQ(shared.regions[i].jobs_migrated_in, isolated.regions[i].jobs_migrated_in) << i;
    EXPECT_EQ(shared.regions[i].jobs_migrated_out, isolated.regions[i].jobs_migrated_out) << i;
  }
}

TEST(Coordinator, HubSeedsFromMigrationConfigUnderReactiveRouter) {
  // Migration-only forecasting: a reactive router ignores the hub, but the
  // planner still adopts the shared bank (seeded from the migration config).
  std::vector<RegionProfile> profiles = make_reference_fleet();
  profiles.resize(2);
  FleetConfig config;
  config.arrivals.base_rate_per_hour = 1.0;
  config.migration.objective = migrate::MigrationObjective::kCarbon;
  FleetCoordinator fleet(config, std::move(profiles), make_router("carbon_greedy"));
  ASSERT_NE(fleet.forecaster_hub(), nullptr);
  EXPECT_EQ(fleet.forecaster_hub()->banks_created(), 1u);
  // And a fully reactive fleet needs no hub at all.
  std::vector<RegionProfile> reactive_profiles = make_reference_fleet();
  reactive_profiles.resize(2);
  FleetCoordinator reactive(FleetConfig{}, std::move(reactive_profiles),
                            make_router("round_robin"));
  EXPECT_EQ(reactive.forecaster_hub(), nullptr);
}

TEST(Coordinator, RunsInLockstepAndConservesJobs) {
  auto fleet = small_fleet(11, "least_loaded");
  fleet->run_until(TimePoint::from_seconds(0.0) + util::days(3));
  EXPECT_DOUBLE_EQ((fleet->now() - TimePoint::from_seconds(0.0)).days(), 3.0);

  const telemetry::FleetRunSummary summary = fleet->summary();
  std::size_t submitted = 0, routed = 0;
  for (std::size_t i = 0; i < fleet->region_count(); ++i) {
    submitted += fleet->region(i).summary().jobs_submitted;
    routed += fleet->jobs_routed()[i];
    EXPECT_DOUBLE_EQ((fleet->region(i).now() - fleet->now()).seconds(), 0.0);
  }
  EXPECT_GT(submitted, 0u);
  EXPECT_EQ(submitted, routed);
  EXPECT_EQ(summary.total.jobs_submitted, submitted);
}

// Regression: advancing in partial steps must not over-sample arrivals (the
// window drawn used to be a full step regardless of how far the clock moved).
TEST(Coordinator, PartialStepAdvancesDoNotInflateArrivals) {
  auto whole = small_fleet(21, "round_robin");
  auto partial = small_fleet(21, "round_robin");
  const TimePoint end = TimePoint::from_seconds(0.0) + util::days(2);
  whole->run_until(end);
  // Same wall-clock coverage, but driven in quarter-step (3.75 min) calls.
  for (TimePoint t = TimePoint::from_seconds(0.0); t < end; t += util::minutes(3.75)) {
    partial->run_until(t + util::minutes(3.75));
  }
  const double a = static_cast<double>(whole->summary().total.jobs_submitted);
  const double b = static_cast<double>(partial->summary().total.jobs_submitted);
  ASSERT_GT(a, 0.0);
  // Different RNG draws, same rate: counts agree statistically (was ~4x).
  EXPECT_NEAR(b / a, 1.0, 0.25);
}

TEST(Coordinator, IdenticalSeedsAreBitIdentical) {
  auto a = small_fleet(1234, "carbon_greedy");
  auto b = small_fleet(1234, "carbon_greedy");
  const TimePoint end = TimePoint::from_seconds(0.0) + util::days(5);
  a->run_until(end);
  b->run_until(end);
  EXPECT_EQ(a->jobs_routed(), b->jobs_routed());
  const telemetry::FleetRunSummary sa = a->summary();
  const telemetry::FleetRunSummary sb = b->summary();
  EXPECT_EQ(sa.total.jobs_submitted, sb.total.jobs_submitted);
  EXPECT_EQ(sa.total.jobs_completed, sb.total.jobs_completed);
  EXPECT_DOUBLE_EQ(sa.total.completed_gpu_hours, sb.total.completed_gpu_hours);
  EXPECT_DOUBLE_EQ(sa.total.grid_totals.energy.joules(), sb.total.grid_totals.energy.joules());
  EXPECT_DOUBLE_EQ(sa.total.grid_totals.carbon.kilograms(),
                   sb.total.grid_totals.carbon.kilograms());
  EXPECT_DOUBLE_EQ(sa.total.grid_totals.cost.dollars(), sb.total.grid_totals.cost.dollars());
}

TEST(Coordinator, DifferentSeedsDiverge) {
  auto a = small_fleet(1, "round_robin");
  auto b = small_fleet(2, "round_robin");
  const TimePoint end = TimePoint::from_seconds(0.0) + util::days(3);
  a->run_until(end);
  b->run_until(end);
  EXPECT_NE(a->summary().total.grid_totals.energy.joules(),
            b->summary().total.grid_totals.energy.joules());
}

TEST(Coordinator, TransferLedgerMetersOffHomePlacements) {
  auto fleet = small_fleet(5, "round_robin", /*transfer_kwh=*/5.0);
  fleet->run_until(TimePoint::from_seconds(0.0) + util::days(2));
  std::size_t off_home = 0;
  for (std::size_t i = 1; i < fleet->region_count(); ++i) off_home += fleet->jobs_routed()[i];
  ASSERT_GT(off_home, 0u);
  const grid::EnergyLedger transfer = fleet->transfer_ledger();
  EXPECT_NEAR(transfer.energy.kilowatt_hours(), 5.0 * static_cast<double>(off_home), 1e-6);
  EXPECT_GT(transfer.cost.dollars(), 0.0);
  EXPECT_GT(transfer.carbon.kilograms(), 0.0);
  // And it shows up in the fleet footprint but not the grid totals.
  const telemetry::FleetRunSummary summary = fleet->summary();
  EXPECT_NEAR(summary.footprint().energy.joules(),
              (summary.total.grid_totals.energy + transfer.energy).joules(), 1.0);
  // Attribution: every transfer was billed at its destination (off-home)
  // region, never at the home region, and the per-region ledgers sum to the
  // fleet ledger exactly.
  EXPECT_DOUBLE_EQ(fleet->region_transfer(0).energy.joules(), 0.0);
  grid::EnergyLedger per_region;
  for (std::size_t i = 0; i < fleet->region_count(); ++i) {
    per_region += fleet->region_transfer(i);
  }
  EXPECT_DOUBLE_EQ(per_region.energy.joules(), transfer.energy.joules());
  EXPECT_DOUBLE_EQ(per_region.cost.dollars(), transfer.cost.dollars());
  EXPECT_DOUBLE_EQ(per_region.carbon.kilograms(), transfer.carbon.kilograms());
}

TEST(Coordinator, ViewsReflectRegionState) {
  auto fleet = small_fleet(3, "least_loaded");
  fleet->run_until(TimePoint::from_seconds(0.0) + util::days(1));
  for (std::size_t i = 0; i < fleet->region_count(); ++i) {
    const RegionView v = fleet->view_of(i);
    EXPECT_EQ(v.index, i);
    EXPECT_EQ(v.is_home, i == 0u);
    EXPECT_EQ(v.total_gpus, fleet->region(i).cluster_state().total_gpus());
    EXPECT_EQ(v.free_gpus, fleet->region(i).cluster_state().free_gpus());
    EXPECT_GT(v.carbon.kg_per_kwh(), 0.0);
    EXPECT_GT(v.price.usd_per_mwh(), 0.0);
  }
}

TEST(Coordinator, RejectsBadConfigs) {
  std::vector<RegionProfile> none;
  EXPECT_THROW(FleetCoordinator(FleetConfig{}, none, std::make_unique<RoundRobinRouter>()),
               std::invalid_argument);
  std::vector<RegionProfile> one = {make_reference_fleet()[0]};
  EXPECT_THROW(FleetCoordinator(FleetConfig{}, one, nullptr), std::invalid_argument);
  FleetConfig bad_home;
  bad_home.home_region = 7;
  EXPECT_THROW(FleetCoordinator(bad_home, one, std::make_unique<RoundRobinRouter>()),
               std::invalid_argument);
}

TEST(Coordinator, ReferenceFactoryRunsEndToEnd) {
  auto fleet = make_reference_fleet_coordinator("cost_greedy", 9, /*region_count=*/2);
  ASSERT_EQ(fleet->region_count(), 2u);
  fleet->run_until(TimePoint::from_seconds(0.0) + util::days(2));
  EXPECT_GT(fleet->summary().total.jobs_submitted, 0u);
  EXPECT_THROW(make_reference_fleet_coordinator("warp", 9), std::invalid_argument);
}

// --- aggregation -------------------------------------------------------------

TEST(FleetSummary, AggregatesSumsAndWeightedMeans) {
  telemetry::RegionRunSummary a;
  a.name = "a";
  a.total_gpus = 100;
  a.run.jobs_submitted = 10;
  a.run.jobs_completed = 8;
  a.run.mean_utilization = 0.5;
  a.run.mean_pue = 1.2;
  a.run.mean_queue_wait_hours = 1.0;
  a.run.p95_queue_wait_hours = 2.0;
  a.run.completed_gpu_hours = 100.0;
  a.run.grid_totals.energy = util::kilowatt_hours(100.0);
  a.run.grid_totals.carbon = util::kg_co2(10.0);

  telemetry::RegionRunSummary b = a;
  b.name = "b";
  b.total_gpus = 300;
  b.run.jobs_completed = 24;
  b.run.mean_utilization = 0.9;
  b.run.mean_pue = 1.4;
  b.run.mean_queue_wait_hours = 3.0;
  b.run.p95_queue_wait_hours = 5.0;
  b.run.grid_totals.energy = util::kilowatt_hours(300.0);

  // Per-region transfer ledgers roll up into the fleet transfer ledger.
  a.transfer.energy = util::kilowatt_hours(10.0);
  b.transfer.energy = util::kilowatt_hours(30.0);

  const telemetry::FleetRunSummary fleet = telemetry::aggregate_fleet({a, b});
  EXPECT_DOUBLE_EQ(fleet.transfer.energy.kilowatt_hours(), 40.0);
  EXPECT_DOUBLE_EQ(fleet.footprint().energy.kilowatt_hours(), 440.0);
  EXPECT_EQ(fleet.total.jobs_submitted, 20u);
  EXPECT_EQ(fleet.total.jobs_completed, 32u);
  EXPECT_DOUBLE_EQ(fleet.total.completed_gpu_hours, 200.0);
  EXPECT_DOUBLE_EQ(fleet.total.grid_totals.energy.kilowatt_hours(), 400.0);
  // GPU-weighted utilization: (100*0.5 + 300*0.9) / 400 = 0.8.
  EXPECT_DOUBLE_EQ(fleet.total.mean_utilization, 0.8);
  // Energy-weighted PUE: (100*1.2 + 300*1.4) / 400 = 1.35.
  EXPECT_DOUBLE_EQ(fleet.total.mean_pue, 1.35);
  // Completion-weighted wait: (8*1 + 24*3) / 32 = 2.5.
  EXPECT_DOUBLE_EQ(fleet.total.mean_queue_wait_hours, 2.5);
  EXPECT_DOUBLE_EQ(fleet.total.p95_queue_wait_hours, 5.0);
  EXPECT_EQ(fleet_region_table(fleet).row_count(), 2u);
  EXPECT_GT(fleet_total_table(fleet).row_count(), 5u);
}

// --- core: local time offsets ------------------------------------------------

TEST(LocalTime, OffsetShiftsEnvironmentPhase) {
  core::DatacenterConfig config;
  config.local_time_offset = util::hours(-3.0);
  core::Datacenter dc(config, std::make_unique<sched::FcfsScheduler>());
  const TimePoint t = TimePoint::from_seconds(7200.0);
  EXPECT_DOUBLE_EQ((dc.local_time(t) - t).hours(), -3.0);

  // Same seed, different offsets: the twins see different weather/price
  // phases, so identical workloads produce different energy totals.
  core::DatacenterConfig base;
  auto make = [](core::DatacenterConfig c, double offset_h) {
    c.local_time_offset = util::hours(offset_h);
    auto d = std::make_unique<core::Datacenter>(c, std::make_unique<sched::FcfsScheduler>());
    d->attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    d->run_until(TimePoint::from_seconds(0.0) + util::days(2));
    return d->summary().grid_totals.energy.joules();
  };
  EXPECT_NE(make(base, 0.0), make(base, -6.0));
}

}  // namespace
}  // namespace greenhpc::fleet
