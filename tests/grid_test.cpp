// Unit tests for greenhpc::grid — fuel mix, carbon, prices, metering,
// battery storage, and the monthly purchase planner.

#include <gtest/gtest.h>

#include <cmath>

#include "grid/battery.hpp"
#include "grid/carbon.hpp"
#include "grid/connection.hpp"
#include "grid/fuel_mix.hpp"
#include "grid/price.hpp"
#include "grid/purchase_planner.hpp"
#include "grid/wind_farm.hpp"

namespace greenhpc::grid {
namespace {

using util::CivilDate;
using util::MonthKey;
using util::TimePoint;

// --- FuelMix -----------------------------------------------------------------

TEST(FuelMixTest, NormalizedSharesSumToOne) {
  std::array<double, kFuelCount> weights{};
  weights[static_cast<std::size_t>(Fuel::kSolar)] = 2.0;
  weights[static_cast<std::size_t>(Fuel::kNaturalGas)] = 6.0;
  const FuelMix mix = FuelMix::normalized(weights);
  EXPECT_DOUBLE_EQ(mix.share(Fuel::kSolar), 0.25);
  EXPECT_DOUBLE_EQ(mix.share(Fuel::kNaturalGas), 0.75);
  double total = 0.0;
  for (double s : mix.shares()) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FuelMixTest, RejectsInvalidWeights) {
  std::array<double, kFuelCount> zero{};
  EXPECT_THROW((void)FuelMix::normalized(zero), std::invalid_argument);
  std::array<double, kFuelCount> neg{};
  neg[0] = -1.0;
  neg[1] = 2.0;
  EXPECT_THROW((void)FuelMix::normalized(neg), std::invalid_argument);
}

TEST(FuelMixTest, RenewableShareIsSolarPlusWind) {
  std::array<double, kFuelCount> weights{};
  weights[static_cast<std::size_t>(Fuel::kSolar)] = 1.0;
  weights[static_cast<std::size_t>(Fuel::kWind)] = 2.0;
  weights[static_cast<std::size_t>(Fuel::kNaturalGas)] = 7.0;
  const FuelMix mix = FuelMix::normalized(weights);
  EXPECT_NEAR(mix.renewable_share(), 0.3, 1e-12);
}

TEST(FuelMixModelTest, SharesAlwaysValid) {
  const FuelMixModel model;
  for (int h = 0; h < 24 * 40; h += 7) {
    const FuelMix mix = model.mix_at(TimePoint::from_seconds(h * 3600.0));
    double total = 0.0;
    for (double s : mix.shares()) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(FuelMixModelTest, SolarIsZeroAtNight) {
  const FuelMixModel model;
  const TimePoint midnight = util::to_timepoint(CivilDate{2020, 6, 15}, 1.0);
  EXPECT_DOUBLE_EQ(model.mix_at(midnight).share(Fuel::kSolar), 0.0);
  const TimePoint noon = util::to_timepoint(CivilDate{2020, 6, 15}, 12.5);
  EXPECT_GT(model.mix_at(noon).share(Fuel::kSolar), 0.02);
}

TEST(FuelMixModelTest, SpringGreenerThanSummer) {
  const FuelMixModel model;
  const double april = model.monthly_renewable_pct(MonthKey{2020, 4});
  const double august = model.monthly_renewable_pct(MonthKey{2020, 8});
  EXPECT_GT(april, august);
  // Calibration band from the paper's Fig. 2: ~5-8.5%.
  EXPECT_GT(april, 6.5);
  EXPECT_LT(august, 6.5);
}

TEST(FuelMixModelTest, DeterministicForSeed) {
  const FuelMixModel a{FuelMixConfig{}};
  const FuelMixModel b{FuelMixConfig{}};
  const TimePoint t = util::to_timepoint(CivilDate{2021, 3, 14}, 9.0);
  EXPECT_DOUBLE_EQ(a.mix_at(t).share(Fuel::kWind), b.mix_at(t).share(Fuel::kWind));
}

// --- carbon ---------------------------------------------------------------------

TEST(CarbonTest, IntensityOfPureFuels) {
  const FuelMixModel mix_model;
  const CarbonIntensityModel model(&mix_model);
  std::array<double, kFuelCount> coal{};
  coal[static_cast<std::size_t>(Fuel::kCoal)] = 1.0;
  EXPECT_NEAR(model.intensity_of(FuelMix::normalized(coal)).kg_per_kwh(), 0.82, 1e-12);
  std::array<double, kFuelCount> wind{};
  wind[static_cast<std::size_t>(Fuel::kWind)] = 1.0;
  EXPECT_NEAR(model.intensity_of(FuelMix::normalized(wind)).kg_per_kwh(), 0.011, 1e-12);
}

TEST(CarbonTest, GridIntensityInPlausibleBand) {
  const FuelMixModel mix_model;
  const CarbonIntensityModel model(&mix_model);
  for (int m = 1; m <= 12; ++m) {
    const double kg = model.monthly_average(MonthKey{2020, m}).kg_per_kwh();
    EXPECT_GT(kg, 0.15) << "month " << m;
    EXPECT_LT(kg, 0.45) << "month " << m;
  }
}

TEST(CarbonTest, GreenerMixMeansLowerIntensity) {
  const FuelMixModel mix_model;
  const CarbonIntensityModel model(&mix_model);
  // April (renewables peak) must be cleaner than August (renewables trough).
  EXPECT_LT(model.monthly_average(MonthKey{2020, 4}).kg_per_kwh(),
            model.monthly_average(MonthKey{2020, 8}).kg_per_kwh());
}

TEST(CarbonTest, NullModelThrows) {
  EXPECT_THROW(CarbonIntensityModel(nullptr), std::invalid_argument);
}

// --- price ----------------------------------------------------------------------

TEST(PriceTest, AlwaysAboveFloor) {
  const FuelMixModel mix;
  const LmpPriceModel model(PriceConfig{}, &mix);
  for (int h = 0; h < 24 * 60; h += 5) {
    const double p = model.price_at(TimePoint::from_seconds(h * 3600.0)).usd_per_mwh();
    EXPECT_GE(p, model.config().floor_usd_per_mwh);
  }
}

TEST(PriceTest, SpringCheaperThanWinter) {
  const FuelMixModel mix;
  const LmpPriceModel model(PriceConfig{}, &mix);
  const double april = model.monthly_average(MonthKey{2020, 4}).usd_per_mwh();
  const double january = model.monthly_average(MonthKey{2020, 1}).usd_per_mwh();
  EXPECT_LT(april, january);
  // Fig. 3 band: spring $20-25, winter up to ~$50.
  EXPECT_LT(april, 28.0);
  EXPECT_GT(january, 35.0);
}

TEST(PriceTest, EveningPeakAboveOvernight) {
  const LmpPriceModel model;  // no fuel-mix coupling, isolates diurnal shape
  const TimePoint evening = util::to_timepoint(CivilDate{2020, 5, 6}, 18.0);  // Wednesday
  const TimePoint night = util::to_timepoint(CivilDate{2020, 5, 6}, 3.0);
  EXPECT_GT(model.price_at(evening).usd_per_mwh(), model.price_at(night).usd_per_mwh());
}

TEST(PriceTest, WeekendDiscount) {
  const LmpPriceModel model;
  const TimePoint saturday = util::to_timepoint(CivilDate{2020, 5, 9}, 12.0);
  const TimePoint wednesday = util::to_timepoint(CivilDate{2020, 5, 6}, 12.0);
  EXPECT_LT(model.price_at(saturday).usd_per_mwh(), model.price_at(wednesday).usd_per_mwh());
}

TEST(PriceTest, SpikesRaiseTail) {
  PriceConfig spiky;
  spiky.spikes_per_year = 400.0;
  spiky.spike_multiplier = 5.0;
  const LmpPriceModel model(spiky);
  const LmpPriceModel calm;  // default ~10 spikes/year
  double max_spiky = 0.0, max_calm = 0.0;
  for (int h = 0; h < 24 * 120; ++h) {
    const TimePoint t = TimePoint::from_seconds(h * 3600.0);
    max_spiky = std::max(max_spiky, model.price_at(t).usd_per_mwh());
    max_calm = std::max(max_calm, calm.price_at(t).usd_per_mwh());
  }
  EXPECT_GT(max_spiky, max_calm);
}

TEST(PriceTest, ConfigValidation) {
  PriceConfig bad;
  bad.base_usd_per_mwh[3] = -5.0;
  EXPECT_THROW(LmpPriceModel{bad}, std::invalid_argument);
  PriceConfig noisy;
  noisy.noise_amplitude = 1.5;
  EXPECT_THROW(LmpPriceModel{noisy}, std::invalid_argument);
}

// --- connection -------------------------------------------------------------------

TEST(ConnectionTest, MetersEnergyCostCarbonWater) {
  const FuelMixModel mix;
  const CarbonIntensityModel carbon(&mix);
  const LmpPriceModel price(PriceConfig{}, &mix);
  GridConnection conn(&price, &carbon);

  const TimePoint t = util::to_timepoint(CivilDate{2020, 7, 1}, 12.0);
  const EnergyLedger delta = conn.draw(t, util::kilowatts(300.0), util::hours(2));

  EXPECT_NEAR(delta.energy.kilowatt_hours(), 600.0, 1e-9);
  EXPECT_NEAR(delta.cost.dollars(),
              delta.energy.megawatt_hours() * price.price_at(t).usd_per_mwh(), 1e-9);
  EXPECT_NEAR(delta.carbon.kilograms(), 600.0 * carbon.intensity_at(t).kg_per_kwh(), 1e-9);
  EXPECT_NEAR(delta.water.liters(), 600.0 * 1.8, 1e-9);
  EXPECT_NEAR(conn.totals().energy.kilowatt_hours(), 600.0, 1e-9);
}

TEST(ConnectionTest, MonthlyPowerLedgerMatchesDraws) {
  const FuelMixModel mix;
  const CarbonIntensityModel carbon(&mix);
  const LmpPriceModel price(PriceConfig{}, &mix);
  GridConnection conn(&price, &carbon);

  const TimePoint start = util::to_timepoint(CivilDate{2020, 2, 1});
  for (int h = 0; h < 24; ++h)
    conn.draw(start + util::hours(h), util::kilowatts(250.0), util::hours(1));
  const auto feb = conn.monthly_power().month(MonthKey{2020, 2});
  ASSERT_TRUE(feb.has_value());
  EXPECT_NEAR(feb->time_weighted_mean, 250.0, 1e-9);
}

TEST(ConnectionTest, RejectsNegativeInput) {
  const FuelMixModel mix;
  const CarbonIntensityModel carbon(&mix);
  const LmpPriceModel price(PriceConfig{}, &mix);
  GridConnection conn(&price, &carbon);
  EXPECT_THROW(conn.draw(TimePoint::from_seconds(0), util::watts(-1.0), util::hours(1)),
               std::invalid_argument);
}

// --- battery -----------------------------------------------------------------------

TEST(BatteryTest, ChargeRespectsCapacityAndLosses) {
  BatteryConfig config;
  config.capacity = util::kilowatt_hours(100.0);
  config.max_charge = util::kilowatts(50.0);
  config.charge_efficiency = 0.9;
  config.initial_soc_fraction = 0.0;
  BatteryStorage battery(config);

  // 50 kW for 1 h -> 50 kWh from grid, 45 kWh stored.
  const util::Energy from_grid = battery.charge(util::kilowatts(50.0), util::hours(1));
  EXPECT_NEAR(from_grid.kilowatt_hours(), 50.0, 1e-9);
  EXPECT_NEAR(battery.state_of_charge().kilowatt_hours(), 45.0, 1e-9);
}

TEST(BatteryTest, ChargeIsRateLimited) {
  BatteryConfig config;
  config.capacity = util::kilowatt_hours(1000.0);
  config.max_charge = util::kilowatts(10.0);
  config.initial_soc_fraction = 0.0;
  BatteryStorage battery(config);
  const util::Energy from_grid = battery.charge(util::kilowatts(100.0), util::hours(1));
  EXPECT_NEAR(from_grid.kilowatt_hours(), 10.0, 1e-9);
}

TEST(BatteryTest, ChargeStopsAtFull) {
  BatteryConfig config;
  config.capacity = util::kilowatt_hours(10.0);
  config.max_charge = util::kilowatts(100.0);
  config.charge_efficiency = 1.0;
  config.initial_soc_fraction = 0.5;
  BatteryStorage battery(config);
  const util::Energy from_grid = battery.charge(util::kilowatts(100.0), util::hours(1));
  EXPECT_NEAR(from_grid.kilowatt_hours(), 5.0, 1e-9);  // only headroom fits
  EXPECT_NEAR(battery.soc_fraction(), 1.0, 1e-9);
}

TEST(BatteryTest, DischargeRespectsSocAndLosses) {
  BatteryConfig config;
  config.capacity = util::kilowatt_hours(100.0);
  config.max_discharge = util::kilowatts(100.0);
  config.discharge_efficiency = 0.9;
  config.initial_soc_fraction = 0.1;  // 10 kWh in the cells
  BatteryStorage battery(config);
  const util::Energy delivered = battery.discharge(util::kilowatts(100.0), util::hours(1));
  EXPECT_NEAR(delivered.kilowatt_hours(), 9.0, 1e-9);  // 10 kWh cells * 0.9
  EXPECT_NEAR(battery.state_of_charge().kilowatt_hours(), 0.0, 1e-9);
}

TEST(BatteryTest, EnergyConservationOverCycles) {
  BatteryConfig config;
  config.capacity = util::kilowatt_hours(50.0);
  config.initial_soc_fraction = 0.5;
  BatteryStorage battery(config);
  for (int cycle = 0; cycle < 20; ++cycle) {
    battery.charge(util::kilowatts(40.0), util::hours(0.5));
    battery.discharge(util::kilowatts(40.0), util::hours(0.5));
  }
  // grid_in + initial == delivered + losses + final SoC.
  const double lhs = battery.total_grid_energy_in().kilowatt_hours() + 25.0;
  const double rhs = battery.total_delivered_out().kilowatt_hours() +
                     battery.total_losses().kilowatt_hours() +
                     battery.state_of_charge().kilowatt_hours();
  EXPECT_NEAR(lhs, rhs, 1e-9);
  EXPECT_GT(battery.total_losses().kilowatt_hours(), 0.0);
  EXPECT_GT(battery.equivalent_cycles(), 0.0);
}

TEST(BatteryTest, ThresholdPolicyLogic) {
  const ThresholdArbitragePolicy policy;
  MarketView view;
  view.price = util::usd_per_mwh(20.0);  // below charge_below (25)
  view.soc_fraction = 0.5;
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kCharge);
  view.price = util::usd_per_mwh(50.0);  // above discharge_above (40)
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kDischarge);
  view.price = util::usd_per_mwh(30.0);  // between thresholds
  view.renewable_share = 0.02;
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kIdle);
  view.renewable_share = 0.12;  // green surge triggers charge
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kCharge);
}

// Regression (missing validation): an inverted price band (charge_below >=
// discharge_above) used to be accepted silently, making the policy charge
// and discharge on the same price. It must be rejected at construction,
// mirroring ForecastArbitragePolicy's quantile check.
TEST(BatteryTest, ThresholdPolicyRejectsInvertedPriceBand) {
  ThresholdArbitragePolicy::Params inverted;
  inverted.charge_below = util::usd_per_mwh(40.0);
  inverted.discharge_above = util::usd_per_mwh(25.0);
  EXPECT_THROW(ThresholdArbitragePolicy{inverted}, std::invalid_argument);
  ThresholdArbitragePolicy::Params equal;
  equal.charge_below = util::usd_per_mwh(30.0);
  equal.discharge_above = util::usd_per_mwh(30.0);
  EXPECT_THROW(ThresholdArbitragePolicy{equal}, std::invalid_argument);
  ThresholdArbitragePolicy::Params bad_rate;
  bad_rate.rate = util::watts(0.0);
  EXPECT_THROW(ThresholdArbitragePolicy{bad_rate}, std::invalid_argument);
  EXPECT_NO_THROW(ThresholdArbitragePolicy{ThresholdArbitragePolicy::Params{}});
}

TEST(BatteryTest, ThresholdPolicyRespectsSocLimits) {
  const ThresholdArbitragePolicy policy;
  MarketView view;
  view.price = util::usd_per_mwh(20.0);
  view.soc_fraction = 1.0;  // full: cannot charge
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kIdle);
  view.price = util::usd_per_mwh(50.0);
  view.soc_fraction = 0.0;  // empty: cannot discharge
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kIdle);
}

TEST(BatteryTest, ForecastPolicyUsesQuantiles) {
  // Forecast: prices 10..33 over the next 24 h.
  auto forecast = [](TimePoint) {
    std::vector<double> out;
    for (int h = 0; h < 24; ++h) out.push_back(10.0 + h);
    return out;
  };
  const ForecastArbitragePolicy policy{forecast};
  MarketView view;
  view.soc_fraction = 0.5;
  view.price = util::usd_per_mwh(11.0);  // bottom quartile
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kCharge);
  view.price = util::usd_per_mwh(32.0);  // top quartile
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kDischarge);
  view.price = util::usd_per_mwh(20.0);  // middle
  EXPECT_EQ(policy.decide(view).kind, BatteryAction::Kind::kIdle);
}

TEST(BatteryTest, ConfigValidation) {
  BatteryConfig bad;
  bad.charge_efficiency = 1.5;
  EXPECT_THROW(BatteryStorage{bad}, std::invalid_argument);
  bad = BatteryConfig{};
  bad.capacity = util::kilowatt_hours(0.0);
  EXPECT_THROW(BatteryStorage{bad}, std::invalid_argument);
}

// --- purchase planner ------------------------------------------------------------

class PlannerFixture : public ::testing::Test {
 protected:
  PlannerFixture() : carbon_(&mix_), price_(PriceConfig{}, &mix_), planner_(&price_, &carbon_, &mix_) {}

  FuelMixModel mix_;
  CarbonIntensityModel carbon_;
  LmpPriceModel price_;
  PurchasePlanner planner_;
};

TEST_F(PlannerFixture, BaselinePreservesDemand) {
  const std::vector<util::Energy> demand(12, util::megawatt_hours(100.0));
  const auto baseline = planner_.make_baseline(MonthKey{2021, 1}, demand);
  ASSERT_EQ(baseline.size(), 12u);
  for (const MonthPlan& m : baseline) {
    EXPECT_DOUBLE_EQ(m.purchased.megawatt_hours(), 100.0);
    EXPECT_GT(m.price.usd_per_mwh(), 0.0);
    EXPECT_GT(m.renewable_pct, 0.0);
  }
}

TEST_F(PlannerFixture, LoadShiftConservesTotalEnergy) {
  const std::vector<util::Energy> demand(12, util::megawatt_hours(100.0));
  const auto baseline = planner_.make_baseline(MonthKey{2021, 1}, demand);
  const PlanSummary plan = planner_.plan_load_shift(baseline, 0.3, 2, 0.25);
  double total = 0.0;
  for (const MonthPlan& m : plan.months) total += m.purchased.megawatt_hours();
  EXPECT_NEAR(total, 1200.0, 1e-6);
}

TEST_F(PlannerFixture, LoadShiftReducesCarbon) {
  const std::vector<util::Energy> demand(12, util::megawatt_hours(100.0));
  const auto baseline = planner_.make_baseline(MonthKey{2021, 1}, demand);
  const PlanSummary plan = planner_.plan_load_shift(baseline, 0.3, 2, 0.25);
  EXPECT_GT(plan.carbon_saving_pct(), 0.0);
  EXPECT_LE(plan.planned_carbon.kilograms(), plan.baseline_carbon.kilograms());
}

TEST_F(PlannerFixture, ZeroDeferrableMeansNoChange) {
  const std::vector<util::Energy> demand(12, util::megawatt_hours(100.0));
  const auto baseline = planner_.make_baseline(MonthKey{2021, 1}, demand);
  const PlanSummary plan = planner_.plan_load_shift(baseline, 0.0, 2, 0.25);
  EXPECT_DOUBLE_EQ(plan.carbon_saving_pct(), 0.0);
  EXPECT_DOUBLE_EQ(plan.cost_saving_pct(), 0.0);
}

TEST_F(PlannerFixture, ShiftWindowLimitsMovement) {
  const std::vector<util::Energy> demand(12, util::megawatt_hours(100.0));
  const auto baseline = planner_.make_baseline(MonthKey{2021, 1}, demand);
  const PlanSummary narrow = planner_.plan_load_shift(baseline, 0.3, 1, 0.25);
  const PlanSummary wide = planner_.plan_load_shift(baseline, 0.3, 4, 0.25);
  EXPECT_GE(wide.carbon_saving_pct(), narrow.carbon_saving_pct() - 1e-9);
}

TEST_F(PlannerFixture, StorageOnlyBanksWhenLossesAreWorthIt) {
  const std::vector<util::Energy> demand(12, util::megawatt_hours(100.0));
  const auto baseline = planner_.make_baseline(MonthKey{2021, 1}, demand);
  // At 50% round-trip no month pair on this grid justifies banking.
  const PlanSummary lossy = planner_.plan_storage(baseline, util::megawatt_hours(50.0), 3, 0.5);
  EXPECT_DOUBLE_EQ(lossy.carbon_saving_pct(), 0.0);
  // At 98% some do, and carbon cannot get worse.
  const PlanSummary good = planner_.plan_storage(baseline, util::megawatt_hours(50.0), 3, 0.98);
  EXPECT_GE(good.carbon_saving_pct(), 0.0);
}

TEST_F(PlannerFixture, StorageServesDemandExactly) {
  const std::vector<util::Energy> demand(6, util::megawatt_hours(80.0));
  const auto baseline = planner_.make_baseline(MonthKey{2021, 3}, demand);
  const PlanSummary plan = planner_.plan_storage(baseline, util::megawatt_hours(30.0), 3, 0.95);
  // Delivered + direct purchases must cover demand in every month.
  for (const MonthPlan& m : plan.months) {
    EXPECT_NEAR((m.purchased - m.stored + m.discharged).megawatt_hours(),
                m.baseline_demand.megawatt_hours(), 1e-6);
  }
}

TEST_F(PlannerFixture, InputValidation) {
  const std::vector<util::Energy> demand(12, util::megawatt_hours(100.0));
  const auto baseline = planner_.make_baseline(MonthKey{2021, 1}, demand);
  EXPECT_THROW((void)planner_.plan_load_shift(baseline, 1.5, 2, 0.2), std::invalid_argument);
  EXPECT_THROW((void)planner_.plan_load_shift(baseline, 0.3, -1, 0.2), std::invalid_argument);
  EXPECT_THROW((void)planner_.plan_storage(baseline, util::megawatt_hours(10.0), 2, 0.0),
               std::invalid_argument);
}

// --- wind farm --------------------------------------------------------------------

TEST(WindFarmTest, PowerCurveRegions) {
  const TurbineSpec spec;
  EXPECT_DOUBLE_EQ(turbine_power(spec, 0.0).watts(), 0.0);
  EXPECT_DOUBLE_EQ(turbine_power(spec, 2.9).watts(), 0.0);   // below cut-in
  EXPECT_DOUBLE_EQ(turbine_power(spec, 12.0).megawatts(), 2.5);  // rated
  EXPECT_DOUBLE_EQ(turbine_power(spec, 20.0).megawatts(), 2.5);  // still rated
  EXPECT_DOUBLE_EQ(turbine_power(spec, 25.0).watts(), 0.0);  // cut-out
  EXPECT_DOUBLE_EQ(turbine_power(spec, 30.0).watts(), 0.0);
}

TEST(WindFarmTest, PowerCurveMonotoneInRampRegion) {
  const TurbineSpec spec;
  double prev = 0.0;
  for (double v = 3.0; v <= 12.0; v += 0.25) {
    const double p = turbine_power(spec, v).watts();
    EXPECT_GE(p, prev) << "wind " << v;
    prev = p;
  }
}

TEST(WindFarmTest, CubicRampMidpoint) {
  const TurbineSpec spec;
  // At v where v^3 is halfway between cut-in^3 and rated^3, power is half
  // of rated.
  const double v = std::cbrt((std::pow(3.0, 3) + std::pow(12.0, 3)) / 2.0);
  EXPECT_NEAR(turbine_power(spec, v).megawatts(), 1.25, 1e-9);
}

TEST(WindFarmTest, OutputBoundedByCapacity) {
  const WindFarm farm;
  for (int h = 0; h < 24 * 90; h += 5) {
    const util::Power out = farm.output_at(TimePoint::from_seconds(h * 3600.0));
    EXPECT_GE(out.watts(), 0.0);
    EXPECT_LE(out.watts(), farm.capacity().watts());
  }
}

TEST(WindFarmTest, CapacityFactorRealistic) {
  // Onshore farms run ~20-40% capacity factor.
  const WindFarm farm;
  const double cf = farm.capacity_factor(util::to_timepoint(CivilDate{2021, 1, 1}),
                                         util::to_timepoint(CivilDate{2021, 4, 1}));
  EXPECT_GT(cf, 0.15);
  EXPECT_LT(cf, 0.55);
}

TEST(WindFarmTest, WinterWindierThanSummer) {
  const WindFarm farm;
  const double jan = farm.capacity_factor(util::to_timepoint(CivilDate{2021, 1, 1}),
                                          util::to_timepoint(CivilDate{2021, 2, 1}));
  const double jul = farm.capacity_factor(util::to_timepoint(CivilDate{2021, 7, 1}),
                                          util::to_timepoint(CivilDate{2021, 8, 1}));
  EXPECT_GT(jan, jul);
}

TEST(WindFarmTest, HourlySeriesMatchesPointQueries) {
  const WindFarm farm;
  const TimePoint start = util::to_timepoint(CivilDate{2021, 3, 1});
  const auto series = farm.hourly_output_mw(start, 48);
  ASSERT_EQ(series.size(), 48u);
  EXPECT_DOUBLE_EQ(series[7], farm.output_at(start + util::hours(7)).megawatts());
}

TEST(WindFarmTest, Validation) {
  TurbineSpec bad;
  bad.rated_ms = 2.0;  // below cut-in
  EXPECT_THROW((void)turbine_power(bad, 5.0), std::invalid_argument);
  WindFarmConfig config;
  config.availability = 0.0;
  EXPECT_THROW(WindFarm{config}, std::invalid_argument);
}

}  // namespace
}  // namespace greenhpc::grid
