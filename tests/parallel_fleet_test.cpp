// Region-parallel fleet stepping: the stepping width (and the pool behind
// it) is a wall-clock knob only — every simulated output must be
// bit-identical to the serial path. These tests pin that contract for
// summaries, traces, and metrics, plus the deterministic shard planner, the
// nested-parallelism guard, and the finish-lineages drain mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/optimization.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/region.hpp"
#include "fleet/routing.hpp"
#include "fleet/shard.hpp"
#include "migrate/planner.hpp"
#include "obs/recorder.hpp"
#include "util/thread_pool.hpp"

namespace greenhpc::fleet {
namespace {

/// Every load-bearing summary double in hexfloat: equal digests mean
/// bit-identical simulated results.
std::string digest(const telemetry::FleetRunSummary& s) {
  std::ostringstream out;
  out << std::hexfloat;
  const auto run = [&out](const core::RunSummary& r) {
    out << ' ' << r.jobs_submitted << ' ' << r.jobs_completed << ' ' << r.jobs_pending << ' '
        << r.jobs_migrated << ' ' << r.mean_queue_wait_hours << ' ' << r.completed_gpu_hours
        << ' ' << r.mean_utilization << ' ' << r.mean_pue << ' '
        << r.grid_totals.energy.joules() << ' ' << r.grid_totals.cost.dollars() << ' '
        << r.grid_totals.carbon.kilograms() << ' ' << r.grid_totals.water.liters();
  };
  run(s.total);
  out << ' ' << s.transfer.energy.joules() << ' ' << s.migration.started << ' '
      << s.migration.delivered;
  for (const telemetry::RegionRunSummary& r : s.regions) {
    out << ' ' << r.name << ' ' << r.jobs_routed << ' ' << r.jobs_migrated_in << ' '
        << r.jobs_migrated_out;
    run(r.run);
  }
  return out.str();
}

std::unique_ptr<FleetCoordinator> build_fleet(std::size_t regions, std::size_t step_jobs,
                                              util::ThreadPool* pool, bool migration) {
  std::vector<RegionProfile> profiles = make_synthetic_fleet(regions);
  FleetConfig config;
  config.seed = 42;
  config.arrivals.base_rate_per_hour = scaled_fleet_rate(profiles, 14.0);
  config.step_jobs = step_jobs;
  config.step_pool = pool;
  if (migration) {
    config.migration.objective = *migrate::migration_objective_from_name("carbon");
  }
  return std::make_unique<FleetCoordinator>(std::move(config), std::move(profiles),
                                            make_router("carbon_forecast"));
}

std::string run_digest(std::size_t regions, std::size_t step_jobs, util::ThreadPool* pool,
                       int days, bool migration = true) {
  const auto fleet = build_fleet(regions, step_jobs, pool, migration);
  fleet->run_until(fleet->now() + util::days(days));
  fleet->drain_migrations();
  return digest(fleet->summary());
}

// --- bit-identity across stepping widths ------------------------------------

TEST(ParallelFleet, BitIdenticalAcrossPoolSizesSmallFleet) {
  const std::string serial = run_digest(2, 1, nullptr, 3);
  util::ThreadPool pool1(1);
  util::ThreadPool pool3(3);  // more shards than a 1-thread pool can run at once
  EXPECT_EQ(run_digest(2, 2, &pool1, 3), serial);   // 2 shards on 1 thread
  EXPECT_EQ(run_digest(2, 0, &pool3, 3), serial);   // auto width, pool > regions
}

TEST(ParallelFleet, BitIdentical32Regions) {
  const std::string serial = run_digest(32, 1, nullptr, 2);
  util::ThreadPool pool(3);
  EXPECT_EQ(run_digest(32, 3, &pool, 2), serial);
  EXPECT_EQ(run_digest(32, 7, &pool, 2), serial);  // width != pool size
}

TEST(ParallelFleet, BitIdentical128Regions) {
  const std::string serial = run_digest(128, 1, nullptr, 1);
  util::ThreadPool pool(4);
  EXPECT_EQ(run_digest(128, 4, &pool, 1), serial);
}

// --- trace and metrics identity ----------------------------------------------

/// The phase profiler's wall-clock spans (pid 99) are nondeterministic by
/// nature; everything else must match byte for byte.
std::string sim_trace_lines(const obs::FlightRecorder& recorder) {
  std::ostringstream raw;
  recorder.trace().write(raw);
  std::istringstream in(raw.str());
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("\"pid\": 99") == std::string::npos) out += line + '\n';
  }
  return out;
}

TEST(ParallelFleet, TraceAndMetricsBitIdentical) {
  const auto instrumented_run = [](std::size_t step_jobs, util::ThreadPool* pool,
                                   std::string* trace, std::string* metrics) {
    obs::FlightRecorderConfig rc;
    rc.trace = true;
    rc.metrics = true;
    obs::FlightRecorder recorder(rc);
    const auto fleet = build_fleet(4, step_jobs, pool, /*migration=*/true);
    fleet->set_recorder(&recorder);
    fleet->run_until(fleet->now() + util::days(3));
    fleet->drain_migrations();
    *trace = sim_trace_lines(recorder);
    *metrics = recorder.metrics_csv();
    return digest(fleet->summary());
  };

  std::string serial_trace, serial_metrics, par_trace, par_metrics;
  const std::string serial = instrumented_run(1, nullptr, &serial_trace, &serial_metrics);
  util::ThreadPool pool(3);
  const std::string parallel = instrumented_run(3, &pool, &par_trace, &par_metrics);
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(par_trace, serial_trace);
  EXPECT_FALSE(serial_trace.empty());
  EXPECT_EQ(par_metrics, serial_metrics);
}

TEST(ParallelFleet, AttributionExportBitIdentical) {
  // The attribution threading contract: each region's sink is touched only
  // by its owning shard between barriers, overhead billing stays in the
  // serial phases, and reports fold sinks in region-index order — so the
  // rendered artifact must be byte-identical across stepping widths.
  const auto attributed_run = [](std::size_t step_jobs, util::ThreadPool* pool,
                                 std::string* attrib) {
    obs::FlightRecorderConfig rc;
    rc.attribution = true;
    obs::FlightRecorder recorder(rc);
    const auto fleet = build_fleet(4, step_jobs, pool, /*migration=*/true);
    fleet->set_recorder(&recorder);
    fleet->run_until(fleet->now() + util::days(3));
    fleet->drain_migrations();
    *attrib = obs::attribution_csv(recorder.attribution().report());
    return digest(fleet->summary());
  };

  std::string serial_attrib, par_attrib;
  const std::string serial = attributed_run(1, nullptr, &serial_attrib);
  util::ThreadPool pool(3);
  const std::string parallel = attributed_run(3, &pool, &par_attrib);
  EXPECT_EQ(parallel, serial);
  EXPECT_FALSE(serial_attrib.empty());
  EXPECT_EQ(par_attrib, serial_attrib);
}

// --- shard planner -----------------------------------------------------------

TEST(ShardByWeight, CoversEveryIndexExactlyOnce) {
  const std::vector<double> weights{5.0, 1.0, 3.0, 3.0, 2.0, 8.0, 1.0};
  const auto shards = shard_by_weight(weights, 3);
  std::vector<int> seen(weights.size(), 0);
  for (const auto& shard : shards) {
    for (const std::size_t i : shard) {
      ASSERT_LT(i, weights.size());
      ++seen[i];
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardByWeight, DeterministicAndSortedWithinShard) {
  const std::vector<double> weights{4.0, 4.0, 4.0, 1.0, 9.0};
  const auto a = shard_by_weight(weights, 2);
  const auto b = shard_by_weight(weights, 2);
  EXPECT_EQ(a, b);
  for (const auto& shard : a) {
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
  }
}

TEST(ShardByWeight, BalancesEqualWeights) {
  const std::vector<double> weights(10, 1.0);
  const auto shards = shard_by_weight(weights, 5);
  ASSERT_EQ(shards.size(), 5u);
  for (const auto& shard : shards) EXPECT_EQ(shard.size(), 2u);
}

TEST(ShardByWeight, DropsEmptyShards) {
  const std::vector<double> weights{1.0, 2.0};
  const auto shards = shard_by_weight(weights, 8);
  EXPECT_EQ(shards.size(), 2u);  // never more shards than items
}

// --- nested-parallelism guard ------------------------------------------------

TEST(ThreadPoolCurrent, NullOnMainThreadSetInsideWorker) {
  EXPECT_EQ(util::ThreadPool::current(), nullptr);
  util::ThreadPool pool(2);
  util::ThreadPool* seen = nullptr;
  pool.submit([&seen] { seen = util::ThreadPool::current(); }).get();
  EXPECT_EQ(seen, &pool);
  EXPECT_EQ(util::ThreadPool::current(), nullptr);
}

TEST(ParallelFleet, NestedReplicasTimesRegionsDeterministic) {
  // Fleet replicas on a replica pool: region stepping must detect the nested
  // context and fall back to serial (same-pool submission would deadlock),
  // and every replica must stay bit-identical to its standalone run.
  experiment::ScenarioSpec spec;
  spec.name = "nested";
  spec.mode = experiment::Mode::kFleet;
  spec.region_count = 3;
  spec.days = 3;
  spec.warmup_days = 0;
  spec.step_jobs = 0;  // auto — would go parallel outside a pool worker

  experiment::RunnerOptions opts;
  opts.replicas = 3;
  opts.jobs = 2;
  const auto ensemble = experiment::ReplicaRunner(opts).run(spec);
  ASSERT_EQ(ensemble.size(), 3u);
  for (const experiment::ReplicaResult& r : ensemble) {
    const core::RunSummary solo = experiment::run_scenario(spec, r.seed);
    EXPECT_EQ(r.run.jobs_completed, solo.jobs_completed) << "replica " << r.replica;
    EXPECT_EQ(r.run.completed_gpu_hours, solo.completed_gpu_hours) << "replica " << r.replica;
    EXPECT_EQ(r.run.grid_totals.energy.joules(), solo.grid_totals.energy.joules())
        << "replica " << r.replica;
  }
}

// --- drain modes -------------------------------------------------------------

TEST(DrainMigrations, FinishLineagesCreditsEveryLineage) {
  const auto fleet = build_fleet(4, 1, nullptr, /*migration=*/true);
  fleet->run_until(fleet->now() + util::days(6));
  fleet->drain_migrations(DrainMode::kFinishLineages);

  EXPECT_EQ(fleet->migrations_in_flight(), 0u);
  const telemetry::FleetRunSummary s = fleet->summary();
  ASSERT_GT(s.migration.started, 0u) << "window too calm to exercise migration";
  EXPECT_EQ(s.migration.delivered, s.migration.started);
  // No lineage may still hold banked progress: finished means credited.
  for (std::size_t i = 0; i < fleet->region_count(); ++i) {
    EXPECT_EQ(fleet->region(i).pending_migration_credits(), 0u) << "region " << i;
  }
  // Conservation identity: every submission at a region is either a routed
  // arrival or a delivered checkpoint.
  std::size_t submitted = 0, routed = 0;
  for (const telemetry::RegionRunSummary& r : s.regions) {
    submitted += r.run.jobs_submitted;
    routed += r.jobs_routed;
  }
  EXPECT_EQ(submitted, routed + s.migration.delivered);
}

TEST(DrainMigrations, DeliverOnlyStillEmptiesThePipe) {
  const auto fleet = build_fleet(4, 1, nullptr, /*migration=*/true);
  fleet->run_until(fleet->now() + util::days(6));
  fleet->drain_migrations(DrainMode::kDeliverOnly);
  EXPECT_EQ(fleet->migrations_in_flight(), 0u);
}

// --- sched.decision dedup ----------------------------------------------------

std::size_t count_decisions(obs::TraceDetail detail) {
  obs::FlightRecorderConfig rc;
  rc.trace = true;
  rc.trace_detail = detail;
  obs::FlightRecorder recorder(rc);
  // forecast_carbon is the scheduler that records per-job defer rationale —
  // the event class the dedup targets.
  std::vector<RegionProfile> profiles = make_synthetic_fleet(2);
  FleetConfig config;
  config.seed = 42;
  config.arrivals.base_rate_per_hour = scaled_fleet_rate(profiles, 14.0);
  const auto fleet = std::make_unique<FleetCoordinator>(
      std::move(config), std::move(profiles), make_router("carbon_forecast"), [] {
        return core::make_scheduler(core::PolicyKind::kForecastCarbon,
                                    {"climatology", util::hours(24)});
      });
  fleet->set_recorder(&recorder);
  fleet->run_until(fleet->now() + util::days(4));

  std::ostringstream out;
  recorder.trace().write(out);
  const std::string text = out.str();
  std::size_t count = 0;
  for (std::size_t pos = text.find("sched.decision"); pos != std::string::npos;
       pos = text.find("sched.decision", pos + 1)) {
    ++count;
  }
  return count;
}

TEST(TraceDetail, ChangesModeDropsUnchangedDecisionRecords) {
  const std::size_t full = count_decisions(obs::TraceDetail::kFull);
  const std::size_t changes = count_decisions(obs::TraceDetail::kChanges);
  EXPECT_GT(changes, 0u);
  // Re-recording every queued job every step dominates full traces; dedup
  // must remove a substantial share, not a rounding error.
  EXPECT_LT(changes, full / 2);
}

}  // namespace
}  // namespace greenhpc::fleet
