// Unit tests for greenhpc::sched — FCFS, EASY backfill, carbon-, power-, and
// forecast-aware schedulers.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "sched/carbon_aware.hpp"
#include "sched/forecast_carbon.hpp"
#include "sched/pending_index.hpp"
#include "sched/power_aware.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace greenhpc::sched {
namespace {

using cluster::Job;
using cluster::JobId;
using cluster::JobRegistry;
using cluster::JobRequest;
using util::TimePoint;

TimePoint at(double s) { return TimePoint::from_seconds(s); }

/// Harness bundling a small cluster, a registry, and a queue.
struct Harness {
  Harness() {
    cluster::ClusterSpec spec;
    spec.node_count = 4;
    spec.gpus_per_node = 2;  // 8 GPUs total
    cluster = std::make_unique<cluster::Cluster>(spec);
  }

  JobId submit(int gpus, double work_gpu_seconds = 7200.0, bool flexible = false,
               double estimate_factor = 1.0) {
    JobRequest req;
    req.gpus = gpus;
    req.work_gpu_seconds = work_gpu_seconds;
    req.flexible = flexible;
    req.estimate_factor = estimate_factor;
    const JobId id = jobs.submit(req, now);
    queue.push_back(id);
    return id;
  }

  void start_running(JobId id) {
    Job& job = jobs.get(id);
    (void)cluster->allocate(id, job.request().gpus);
    job.start(now);
    std::erase(queue, id);
  }

  SchedulerContext context() {
    SchedulerContext ctx;
    ctx.now = now;
    ctx.cluster = cluster.get();
    ctx.jobs = &jobs;
    ctx.queue = &queue;
    ctx.signals = signals;
    return ctx;
  }

  std::unique_ptr<cluster::Cluster> cluster;
  JobRegistry jobs;
  std::vector<JobId> queue;
  TimePoint now = at(0.0);
  GridSignals signals{util::usd_per_mwh(30.0), util::kg_per_kwh(0.28), 0.06};
};

// --- FCFS --------------------------------------------------------------------------

TEST(Fcfs, StartsJobsInOrderWhileTheyFit) {
  Harness h;
  const JobId a = h.submit(4);
  const JobId b = h.submit(4);
  h.submit(4);  // c does not fit after a+b
  FcfsScheduler sched;
  const auto starts = sched.select(h.context());
  EXPECT_EQ(starts, (std::vector<JobId>{a, b}));
}

TEST(Fcfs, HeadBlocksStrictly) {
  Harness h;
  h.submit(16);          // head cannot ever fit 8-GPU cluster... but blocks
  const JobId b = h.submit(1);
  (void)b;
  FcfsScheduler sched;
  EXPECT_TRUE(sched.select(h.context()).empty());  // no skipping in strict FCFS
}

TEST(Fcfs, DefaultCapIsTdp) {
  Harness h;
  FcfsScheduler sched;
  EXPECT_DOUBLE_EQ(sched.choose_cap(h.context()).watts(), 250.0);
}

// --- EASY backfill -------------------------------------------------------------------

TEST(Backfill, SmallJobBackfillsAroundBlockedHead) {
  Harness h;
  // 6 GPUs busy for ~2 h (true runtime; estimates padded below).
  const JobId running = h.submit(6, 6.0 * 7200.0);
  h.start_running(running);
  // Head wants 8 GPUs: must wait for the release.
  h.submit(8, 7200.0 * 8.0);
  // Short 2-GPU job finishing before the release backfills.
  const JobId shorty = h.submit(2, 2.0 * 600.0);  // 10 minutes
  EasyBackfillScheduler sched;
  const auto starts = sched.select(h.context());
  EXPECT_EQ(starts, (std::vector<JobId>{shorty}));
}

TEST(Backfill, LongJobMustNotDelayHeadReservation) {
  Harness h;
  const JobId running = h.submit(6, 6.0 * 7200.0);  // releases at ~2 h
  h.start_running(running);
  h.submit(8, 8.0 * 7200.0);          // head reserves all 8 GPUs at ~2 h
  h.submit(2, 2.0 * 30.0 * 3600.0);   // 30 h job would straddle the reservation
  EasyBackfillScheduler sched;
  EXPECT_TRUE(sched.select(h.context()).empty());
}

TEST(Backfill, LongJobAllowedOnSpareGpus) {
  Harness h;
  const JobId running = h.submit(6, 6.0 * 7200.0);
  h.start_running(running);
  h.submit(4, 4.0 * 7200.0);         // head needs 4 at shadow time; 8-4=4 spare... 2 free now
  const JobId long_small = h.submit(2, 2.0 * 30.0 * 3600.0);  // fits the spare pool
  EasyBackfillScheduler sched;
  const auto starts = sched.select(h.context());
  EXPECT_EQ(starts, (std::vector<JobId>{long_small}));
}

TEST(Backfill, FcfsPhaseStillRuns) {
  Harness h;
  const JobId a = h.submit(3);
  const JobId b = h.submit(3);
  EasyBackfillScheduler sched;
  const auto starts = sched.select(h.context());
  EXPECT_EQ(starts, (std::vector<JobId>{a, b}));
}

TEST(Backfill, ImpossibleHeadDoesNotBackfillForever) {
  Harness h;
  h.submit(16);  // larger than the whole cluster: head is permanently stuck
  h.submit(1);
  EasyBackfillScheduler sched;
  // Conservative policy: nothing starts around a permanently impossible head.
  EXPECT_TRUE(sched.select(h.context()).empty());
}

TEST(Backfill, IndexedBackfillMatchesLinearScan) {
  // The per-GPU-class pending index is a pure accelerator: for any queue and
  // running mix the indexed phase-3 walk must pick exactly the jobs — in
  // exactly the order — the linear rescan picks.
  util::SplitMix64 rng(123);
  const auto uniform = [&rng](std::size_t n) { return rng.next() % n; };
  for (int trial = 0; trial < 50; ++trial) {
    Harness h;
    // Random running load so the shadow-time reservation varies per trial.
    const int busy = static_cast<int>(uniform(7));
    if (busy > 0) {
      const JobId running =
          h.submit(busy, busy * (1800.0 + static_cast<double>(uniform(20000))));
      h.start_running(running);
    }
    const std::size_t queued = 4 + uniform(12);
    for (std::size_t i = 0; i < queued; ++i) {
      const int gpus = 1 + static_cast<int>(uniform(8));
      h.submit(gpus, gpus * (600.0 + static_cast<double>(uniform(100000))));
    }

    PendingIndex index;
    for (const JobId id : h.queue) index.push(id, h.jobs.get(id).request().gpus);

    EasyBackfillScheduler sched;
    const auto linear = sched.select(h.context());
    SchedulerContext indexed_ctx = h.context();
    indexed_ctx.pending = &index;
    const auto indexed = sched.select(indexed_ctx);
    EXPECT_EQ(indexed, linear) << "trial " << trial;
  }
}

// --- carbon-aware ---------------------------------------------------------------------

TEST(CarbonAware, UrgentJobsAlwaysStart) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.40);  // very dirty grid
  const JobId urgent = h.submit(2, 7200.0, /*flexible=*/false);
  CarbonAwareScheduler sched;
  const auto starts = sched.select(h.context());
  EXPECT_EQ(starts, (std::vector<JobId>{urgent}));
}

TEST(CarbonAware, FlexibleJobsDeferOnDirtyGrid) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.40);
  h.signals.renewable_share = 0.02;
  h.submit(2, 7200.0, /*flexible=*/true);
  CarbonAwareScheduler sched;
  EXPECT_TRUE(sched.select(h.context()).empty());
}

TEST(CarbonAware, FlexibleJobsReleaseInGreenWindow) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.20);  // below absolute threshold
  const JobId flex = h.submit(2, 7200.0, /*flexible=*/true);
  CarbonAwareScheduler sched;
  const auto starts = sched.select(h.context());
  EXPECT_EQ(starts, (std::vector<JobId>{flex}));
}

TEST(CarbonAware, RenewableSurgeAlsoOpensWindow) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.30);
  h.signals.renewable_share = 0.15;
  const JobId flex = h.submit(2, 7200.0, /*flexible=*/true);
  CarbonAwareScheduler sched;
  EXPECT_EQ(sched.select(h.context()), (std::vector<JobId>{flex}));
}

TEST(CarbonAware, DeadlineForcesStart) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.40);
  h.signals.renewable_share = 0.02;
  JobRequest req;
  req.gpus = 2;
  req.work_gpu_seconds = 2.0 * 3600.0;  // 1 h runtime on 2 GPUs
  req.flexible = true;
  req.deadline = h.now + util::hours(2);  // runtime 1 h + margin 1 h: must go now
  const JobId id = h.jobs.submit(req, h.now);
  h.queue.push_back(id);
  CarbonAwareScheduler sched;
  EXPECT_EQ(sched.select(h.context()), (std::vector<JobId>{id}));
}

TEST(CarbonAware, MaxHoldPreventsStarvation) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.40);
  h.signals.renewable_share = 0.02;
  const JobId flex = h.submit(2, 7200.0, /*flexible=*/true);
  CarbonAwareScheduler sched;
  EXPECT_TRUE(sched.select(h.context()).empty());
  // Advance past max_hold: the job must be forced through.
  h.now = h.now + sched.config().max_hold + util::hours(1);
  EXPECT_EQ(sched.select(h.context()), (std::vector<JobId>{flex}));
}

TEST(CarbonAware, ShortJobsReleasedFirstInGreenWindow) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.20);
  const JobId long_flex = h.submit(4, 4.0 * 20.0 * 3600.0, /*flexible=*/true);
  const JobId short_flex = h.submit(4, 4.0 * 600.0, /*flexible=*/true);
  CarbonAwareScheduler sched;
  const auto starts = sched.select(h.context());
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], short_flex);  // shortest-first within the window
  EXPECT_EQ(starts[1], long_flex);
}

TEST(CarbonAware, AdaptiveQuantileTracksHistory) {
  CarbonAwareScheduler sched;
  GridSignals signals;
  signals.renewable_share = 0.0;
  // Feed a week of history: 40% of readings at 0.28, the rest 0.30. The
  // rolling 30%-quantile is then 0.28, so a 0.275 reading qualifies as green
  // even though it exceeds the absolute 0.25 threshold.
  TimePoint t = at(0.0);
  for (int i = 0; i < 800; ++i) {
    signals.carbon = util::kg_per_kwh(i % 5 < 2 ? 0.28 : 0.30);
    (void)sched.green_window(t, signals);
    t = t + util::minutes(15);
  }
  signals.carbon = util::kg_per_kwh(0.275);
  EXPECT_TRUE(sched.green_window(t, signals));
  signals.carbon = util::kg_per_kwh(0.31);
  EXPECT_FALSE(sched.green_window(t + util::minutes(15), signals));
}

// Regression (head-of-line starvation): a must-start job too large for the
// current free pool used to be skipped while smaller jobs started ahead of
// it every round, so it could wait forever on a busy cluster. It must now
// block the queue (its GPUs are reserved) and run as soon as they free up.
TEST(CarbonAware, LargeUrgentJobIsNotStarvedBySmallerOnes) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.20);  // green: flexible work eligible too
  const JobId running = h.submit(6, 6.0 * 7200.0);
  h.start_running(running);
  const JobId big = h.submit(8);             // urgent, needs the whole cluster
  h.submit(1);                               // urgent, would fit right now
  h.submit(1, 7200.0, /*flexible=*/true);    // flexible, green window open
  CarbonAwareScheduler sched;
  // Nothing may start past the blocked must-start job — neither smaller
  // urgent work nor released flexible work.
  EXPECT_TRUE(sched.select(h.context()).empty());
  // Once the running job releases its GPUs, the big job goes first.
  h.cluster->release(running);
  const auto starts = sched.select(h.context());
  ASSERT_FALSE(starts.empty());
  EXPECT_EQ(starts[0], big);
}

TEST(CarbonAware, NeverSatisfiableJobCannotWedgeTheQueue) {
  // A must-start job larger than the whole cluster can never run; reserving
  // GPUs for it would block the queue forever, so it is skipped instead.
  Harness h;
  h.submit(16);  // urgent, larger than the 8-GPU cluster
  const JobId small = h.submit(2);
  CarbonAwareScheduler sched;
  EXPECT_EQ(sched.select(h.context()), (std::vector<JobId>{small}));
  ForecastCarbonScheduler forecast_sched;
  EXPECT_EQ(forecast_sched.select(h.context()), (std::vector<JobId>{small}));
}

// Regression (hardcoded warm-up): the adaptive-quantile trigger used to
// activate at 96 samples regardless of cadence (an 8-hour warm-up at
// 5-minute sampling, a 4-day one at hourly sampling). It must activate after
// one day of observed span at any tick length.
TEST(CarbonAware, AdaptiveWarmupDerivedFromSampleCadence) {
  CarbonAwareScheduler sched;
  GridSignals signals;
  signals.renewable_share = 0.0;
  // 5-minute sampling: 12 hours = 145 samples, more than the old hardcoded
  // 96 but less than a day — the quantile trigger must NOT be live yet.
  TimePoint t = at(0.0);
  for (int i = 0; i <= 144; ++i) {
    signals.carbon = util::kg_per_kwh(i % 5 < 2 ? 0.28 : 0.30);
    (void)sched.green_window(t, signals);
    t = t + util::minutes(5);
  }
  signals.carbon = util::kg_per_kwh(0.275);  // below the 30% quantile (0.28)
  EXPECT_FALSE(sched.green_window(t, signals));
  // Keep feeding to a full day of span: now it must be live.
  for (int i = 0; i < 150; ++i) {
    t = t + util::minutes(5);
    signals.carbon = util::kg_per_kwh(i % 5 < 2 ? 0.28 : 0.30);
    (void)sched.green_window(t, signals);
  }
  t = t + util::minutes(5);
  signals.carbon = util::kg_per_kwh(0.275);
  EXPECT_TRUE(sched.green_window(t, signals));
}

// --- forecast-carbon -----------------------------------------------------------------

/// Sinusoidal daily carbon profile (kg/kWh), peak at 06:00, trough at 18:00.
double diurnal_carbon(TimePoint t) {
  return 0.30 + 0.05 * std::sin(2.0 * std::numbers::pi * t.seconds_since_epoch() / 86400.0);
}

/// Feeds `steps` 15-minute control steps through select() so the scheduler's
/// forecaster accumulates history (queue state evolves as a side effect).
void warm_forecaster(ForecastCarbonScheduler& sched, Harness& h, int steps) {
  for (int i = 0; i < steps; ++i) {
    h.signals.carbon = util::kg_per_kwh(diurnal_carbon(h.now));
    h.signals.renewable_share = 0.0;
    (void)sched.select(h.context());
    h.now = h.now + util::minutes(15);
  }
}

TEST(ForecastCarbon, FallsBackToReactiveBeforeWarmup) {
  Harness h;
  ForecastCarbonScheduler sched;
  EXPECT_FALSE(sched.forecaster().ready());
  // Reactive rules apply: urgent starts on a dirty grid, flexible defers...
  h.signals.carbon = util::kg_per_kwh(0.40);
  h.signals.renewable_share = 0.02;
  const JobId urgent = h.submit(2);
  const JobId flex = h.submit(2, 7200.0, /*flexible=*/true);
  EXPECT_EQ(sched.select(h.context()), (std::vector<JobId>{urgent}));
  std::erase(h.queue, urgent);
  // ...and flexible work releases in an (absolute-threshold) green window.
  h.now = h.now + util::minutes(15);
  h.signals.carbon = util::kg_per_kwh(0.20);
  EXPECT_EQ(sched.select(h.context()), (std::vector<JobId>{flex}));
}

TEST(ForecastCarbon, DefersAtPeakReleasesNearTrough) {
  Harness h;
  ForecastCarbonScheduler sched;
  warm_forecaster(sched, h, 30 * 4 + 1);  // 30 h of 15-min samples
  ASSERT_TRUE(sched.forecaster().reliable());

  // Park the clock at the next carbon peak (06:00) and submit flexible work.
  while (std::abs(diurnal_carbon(h.now) - 0.35) > 1e-3) h.now = h.now + util::minutes(15);
  const JobId flex = h.submit(2, 7200.0, /*flexible=*/true);
  h.signals.carbon = util::kg_per_kwh(diurnal_carbon(h.now));
  EXPECT_TRUE(sched.select(h.context()).empty())
      << "deferred: the forecast shows a greener window within slack";

  // Step toward the trough; the job must be released once no meaningfully
  // greener window remains ahead — i.e. near the bottom of the cycle.
  double release_intensity = 1.0;
  for (int i = 0; i < 96 && !h.queue.empty(); ++i) {
    h.now = h.now + util::minutes(15);
    h.signals.carbon = util::kg_per_kwh(diurnal_carbon(h.now));
    const auto starts = sched.select(h.context());
    if (!starts.empty()) {
      EXPECT_EQ(starts[0], flex);
      release_intensity = diurnal_carbon(h.now);
      std::erase(h.queue, flex);
    }
  }
  EXPECT_TRUE(h.queue.empty()) << "flexible job never released";
  EXPECT_LT(release_intensity, 0.27) << "released far from the trough";
}

TEST(ForecastCarbon, BlockedMustStartJobStopsBackfill) {
  Harness h;
  ForecastCarbonScheduler sched;
  const JobId running = h.submit(6, 6.0 * 7200.0);
  h.start_running(running);
  const JobId big = h.submit(8);  // urgent, blocked on the running job
  h.submit(1);
  EXPECT_TRUE(sched.select(h.context()).empty());
  h.cluster->release(running);
  const auto starts = sched.select(h.context());
  ASSERT_FALSE(starts.empty());
  EXPECT_EQ(starts[0], big);
}

TEST(ForecastCarbon, DeferSlackRespectsDeadlineAndMaxHold) {
  Harness h;
  ForecastCarbonScheduler sched;
  JobRequest req;
  req.gpus = 2;
  req.work_gpu_seconds = 2.0 * 3600.0;  // 1 h runtime on 2 GPUs
  req.flexible = true;
  req.deadline = h.now + util::hours(10);
  const JobId id = h.jobs.submit(req, h.now);
  const cluster::Job& job = h.jobs.get(id);
  // Deadline slack: 10 h - 1 h runtime - 1 h margin = 8 h (below max_hold).
  EXPECT_NEAR(sched.defer_slack(job, h.now, 1.0).hours(), 8.0, 1e-9);
  // Without a deadline, the remaining max-hold budget is the slack.
  JobRequest open = req;
  open.deadline.reset();
  const cluster::Job& job2 = h.jobs.get(h.jobs.submit(open, h.now));
  EXPECT_NEAR(sched.defer_slack(job2, h.now + util::hours(30), 1.0).hours(),
              sched.config().reactive.max_hold.hours() - 30.0, 1e-9);
}

// --- power-aware ----------------------------------------------------------------------

TEST(PowerAware, BaseCapAlwaysApplied) {
  Harness h;
  PowerAwareScheduler sched;
  EXPECT_DOUBLE_EQ(sched.choose_cap(h.context()).watts(), sched.config().base_cap.watts());
}

TEST(PowerAware, StressCapOnHighPrice) {
  Harness h;
  h.signals.price = util::usd_per_mwh(60.0);
  PowerAwareScheduler sched;
  EXPECT_DOUBLE_EQ(sched.choose_cap(h.context()).watts(), sched.config().stress_cap.watts());
}

TEST(PowerAware, StressCapOnDirtyGrid) {
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.40);
  PowerAwareScheduler sched;
  EXPECT_DOUBLE_EQ(sched.choose_cap(h.context()).watts(), sched.config().stress_cap.watts());
}

TEST(PowerAware, DelegatesSelectionToInner) {
  Harness h;
  const JobId a = h.submit(3);
  PowerAwareScheduler sched;
  EXPECT_EQ(sched.select(h.context()), (std::vector<JobId>{a}));
}

TEST(PowerAware, ConfigValidation) {
  PowerAwareConfig bad;
  bad.stress_cap = util::watts(220.0);
  bad.base_cap = util::watts(200.0);
  EXPECT_THROW(PowerAwareScheduler{bad}, std::invalid_argument);
}

// Capacity contract shared by all schedulers: selections, started in order,
// never oversubscribe the cluster.
class CapacityContract : public ::testing::TestWithParam<int> {};

TEST_P(CapacityContract, SelectionsAlwaysFit) {
  const int scheduler_kind = GetParam();
  std::unique_ptr<Scheduler> sched;
  switch (scheduler_kind) {
    case 0: sched = std::make_unique<FcfsScheduler>(); break;
    case 1: sched = std::make_unique<EasyBackfillScheduler>(); break;
    case 2: sched = std::make_unique<CarbonAwareScheduler>(); break;
    default: sched = std::make_unique<PowerAwareScheduler>(); break;
  }
  util::Rng rng(99);
  Harness h;
  h.signals.carbon = util::kg_per_kwh(0.20);  // green: everything eligible
  for (int i = 0; i < 40; ++i) h.submit(static_cast<int>(rng.uniform_int(1, 4)));
  const auto starts = sched->select(h.context());
  int used = 0;
  for (cluster::JobId id : starts) {
    used += h.jobs.get(id).request().gpus;
    ASSERT_TRUE(h.cluster->allocate(id, h.jobs.get(id).request().gpus).has_value())
        << "scheduler " << sched->name() << " oversubscribed";
  }
  EXPECT_LE(used, 8);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, CapacityContract, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace greenhpc::sched
