// Unit tests for greenhpc::experiment — scenario specs, the parallel replica
// runner (golden determinism: same seed = same bits, serial or parallel),
// the aggregator's statistical verdicts, and the CI-annotated exports.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "experiment/aggregator.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "telemetry/experiment.hpp"
#include "util/thread_pool.hpp"

namespace greenhpc::experiment {
namespace {

/// A fast single-site scenario (~tens of ms per replica).
ScenarioSpec quick_single() {
  ScenarioSpec spec;
  spec.name = "quick_single";
  spec.days = 5;
  spec.warmup_days = 1;
  return spec;
}

/// A fast 4-region fleet scenario.
ScenarioSpec quick_fleet() {
  ScenarioSpec spec;
  spec.name = "quick_fleet";
  spec.mode = Mode::kFleet;
  spec.region_count = 4;
  spec.days = 5;
  spec.warmup_days = 1;
  return spec;
}

/// The golden 4-region migration scenario: hot enough that checkpoints
/// actually move within the window.
ScenarioSpec quick_migration() {
  ScenarioSpec spec = quick_fleet();
  spec.name = "quick_migration";
  spec.router = "carbon_forecast";
  spec.migration_policy = "carbon";
  spec.rate_per_hour = 14.0;
  return spec;
}

/// Exact equality on every RunSummary field: determinism means identical
/// bits, not nearly-equal values, so no EXPECT_NEAR anywhere here.
void expect_bit_identical(const core::RunSummary& a, const core::RunSummary& b) {
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_pending, b.jobs_pending);
  EXPECT_EQ(a.mean_queue_wait_hours, b.mean_queue_wait_hours);
  EXPECT_EQ(a.p95_queue_wait_hours, b.p95_queue_wait_hours);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.mean_pue, b.mean_pue);
  EXPECT_EQ(a.completed_gpu_hours, b.completed_gpu_hours);
  EXPECT_EQ(a.throttle_hours, b.throttle_hours);
  EXPECT_EQ(a.grid_totals.energy.joules(), b.grid_totals.energy.joules());
  EXPECT_EQ(a.grid_totals.cost.dollars(), b.grid_totals.cost.dollars());
  EXPECT_EQ(a.grid_totals.carbon.kilograms(), b.grid_totals.carbon.kilograms());
  EXPECT_EQ(a.grid_totals.water.liters(), b.grid_totals.water.liters());
}

// --- replica seeds -----------------------------------------------------------

TEST(ReplicaSeed, PureFunctionOfBaseAndIndex) {
  for (std::uint64_t base : {0ULL, 42ULL, 0xDEADBEEFULL}) {
    for (std::size_t k = 0; k < 64; ++k) {
      EXPECT_EQ(replica_seed(base, k), replica_seed(base, k));
    }
  }
}

TEST(ReplicaSeed, DistinctAcrossReplicasAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL, 42ULL}) {
    for (std::size_t k = 0; k < 256; ++k) seen.insert(replica_seed(base, k));
  }
  EXPECT_EQ(seen.size(), 3u * 256u);  // no collisions across the whole grid
}

// --- scenario specs ----------------------------------------------------------

TEST(Scenario, LibraryNamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const ScenarioSpec& spec : scenario_library()) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate scenario " << spec.name;
    EXPECT_NO_THROW(spec.validate());
    const ScenarioSpec* found = find_scenario(spec.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, spec.name);
  }
  EXPECT_EQ(find_scenario("nonexistent"), nullptr);
  EXPECT_NE(scenario_names().find("reference"), std::string::npos);
}

TEST(Scenario, ValidateRejectsBadSpecs) {
  ScenarioSpec bad;
  bad.months = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ScenarioSpec{};
  bad.mode = Mode::kFleet;
  bad.region_count = 513;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ScenarioSpec{};
  bad.mode = Mode::kFleet;
  bad.router = "teleport";
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ScenarioSpec{};
  bad.power_cap_w = -5.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // Mode mismatch at the builders.
  EXPECT_THROW((void)make_fleet(quick_single(), 1), std::invalid_argument);
  EXPECT_THROW((void)make_single_site(quick_fleet(), 1), std::invalid_argument);
}

TEST(Scenario, WindowArithmetic) {
  ScenarioSpec spec;
  spec.start = {2021, 2};
  spec.months = 2;
  EXPECT_DOUBLE_EQ((spec.window_end() - spec.window_start()).days(), 28.0 + 31.0);
  spec.days = 10;  // days override wins
  EXPECT_DOUBLE_EQ((spec.window_end() - spec.window_start()).days(), 10.0);
}

TEST(Scenario, GridExpansionIsCartesianAndLabeled) {
  ScenarioSpec base;
  base.mode = Mode::kFleet;
  GridAxes axes;
  axes.routers = {"round_robin", "carbon_greedy"};
  axes.region_counts = {2, 3, 4};
  axes.transfer_kwh = {0.0, 25.0};
  const std::vector<ScenarioSpec> points = expand_grid(base, axes);
  ASSERT_EQ(points.size(), 2u * 3u * 2u);
  std::set<std::string> labels;
  for (const ScenarioSpec& p : points) labels.insert(p.label());
  EXPECT_EQ(labels.size(), points.size());  // every point distinguishable
  // Empty axes pin the base value.
  EXPECT_EQ(expand_grid(base, GridAxes{}).size(), 1u);
}

TEST(Scenario, GridRejectsAxesTheModeNeverReads) {
  // Mode-irrelevant axes would expand into identical, identically-labeled
  // points; expand_grid must refuse rather than silently multiply the grid.
  GridAxes caps;
  caps.power_caps_w = {250.0, 200.0};
  ScenarioSpec fleet_base;
  fleet_base.mode = Mode::kFleet;
  EXPECT_THROW((void)expand_grid(fleet_base, caps), std::invalid_argument);
  GridAxes routers;
  routers.routers = {"round_robin", "carbon_greedy"};
  EXPECT_THROW((void)expand_grid(ScenarioSpec{}, routers), std::invalid_argument);
}

TEST(Scenario, MigrationControlsAreValidatedAndLabeled) {
  ScenarioSpec bad;
  bad.mode = Mode::kFleet;
  bad.migration_policy = "teleport";
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ScenarioSpec{};
  bad.mode = Mode::kFleet;
  bad.checkpoint_cost = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // Migration needs a fleet: a single-site job has nowhere to go.
  bad = ScenarioSpec{};
  bad.migration_policy = "carbon";
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  ScenarioSpec spec;
  spec.mode = Mode::kFleet;
  EXPECT_EQ(spec.label().find("/mig"), std::string::npos);  // off is unmarked
  spec.migration_policy = "carbon";
  EXPECT_NE(spec.label().find("/mig-carbon"), std::string::npos);
  spec.checkpoint_cost = 2.0;
  EXPECT_NE(spec.label().find("/ckpt2.0"), std::string::npos);
  // Migration runs on the forecasters too: non-default forecast controls
  // must keep two migration points distinguishable even under a reactive
  // router.
  spec.router = "carbon_greedy";
  spec.forecast_model = "ar";
  spec.forecast_horizon_hours = 48;
  EXPECT_NE(spec.label().find("/ar"), std::string::npos);
  EXPECT_NE(spec.label().find("/h48"), std::string::npos);

  // The migration axis expands like every other fleet axis and refuses
  // single-site bases.
  GridAxes axes;
  axes.migration_policies = {"off", "carbon", "cost"};
  EXPECT_EQ(expand_grid(quick_fleet(), axes).size(), 3u);
  EXPECT_THROW((void)expand_grid(ScenarioSpec{}, axes), std::invalid_argument);
}

TEST(Scenario, SweepLibraryCoversTheControlAxes) {
  for (const char* name : {"scheduler", "router", "regions", "powercap", "transfer",
                           "forecast_sched", "forecast_router", "migration"}) {
    const SweepSpec* sweep = find_sweep(name);
    ASSERT_NE(sweep, nullptr) << name;
    EXPECT_GE(sweep->points.size(), 2u) << name;
    for (const ScenarioSpec& point : sweep->points) EXPECT_NO_THROW(point.validate());
  }
  EXPECT_EQ(find_sweep("nonexistent"), nullptr);
}

TEST(Scenario, ForecastControlsAreValidatedAndLabeled) {
  ScenarioSpec bad;
  bad.forecast_model = "oracle";
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ScenarioSpec{};
  bad.forecast_horizon_hours = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  // Forecast controls only mark predictive points, and non-default settings
  // keep two predictive points distinguishable.
  ScenarioSpec reactive;
  reactive.scheduler = core::PolicyKind::kCarbonAware;
  reactive.forecast_model = "ar";  // ignored by a reactive scheduler
  EXPECT_EQ(reactive.label().find("/ar"), std::string::npos);
  ScenarioSpec predictive;
  predictive.scheduler = core::PolicyKind::kForecastCarbon;
  EXPECT_EQ(predictive.label(), "forecast_carbon");
  predictive.forecast_model = "ar";
  predictive.forecast_horizon_hours = 48;
  EXPECT_NE(predictive.label().find("/ar"), std::string::npos);
  EXPECT_NE(predictive.label().find("/h48"), std::string::npos);
}

// --- golden determinism ------------------------------------------------------

TEST(GoldenDeterminism, SingleSiteSameSeedSameBits) {
  const ScenarioSpec spec = quick_single();
  expect_bit_identical(run_scenario(spec, 20210401), run_scenario(spec, 20210401));
}

TEST(GoldenDeterminism, FourRegionFleetSameSeedSameBits) {
  const ScenarioSpec spec = quick_fleet();
  expect_bit_identical(run_scenario(spec, 77), run_scenario(spec, 77));
}

TEST(GoldenDeterminism, MigrationScenarioSameSeedSameBits) {
  const ScenarioSpec spec = quick_migration();
  expect_bit_identical(run_scenario(spec, 4242), run_scenario(spec, 4242));
}

TEST(GoldenDeterminism, MigrationResultsIndependentOfPoolSize) {
  // The golden cross-pool pin for the migration decision layer: replica k of
  // the 4-region migration scenario is bit-identical run serially, on one
  // worker, or on four — planner state, transfer-pipe order, and lineage
  // bookkeeping never leak across replicas or depend on scheduling.
  const ScenarioSpec spec = quick_migration();
  const ReplicaRunner one({3, 123, 1});
  const ReplicaRunner four({3, 123, 4});
  const std::vector<ReplicaResult> a = one.run(spec);
  const std::vector<ReplicaResult> b = four.run(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    expect_bit_identical(a[k].run, b[k].run);
    // And serial, outside any pool, matches too.
    expect_bit_identical(a[k].run, run_scenario(spec, replica_seed(123, k)));
  }
}

TEST(GoldenDeterminism, DifferentSeedsDiverge) {
  const ScenarioSpec spec = quick_single();
  EXPECT_NE(run_scenario(spec, 1).grid_totals.energy.joules(),
            run_scenario(spec, 2).grid_totals.energy.joules());
}

TEST(GoldenDeterminism, ParallelReplicaMatchesSerialRun) {
  const ScenarioSpec spec = quick_single();
  RunnerOptions opts;
  opts.replicas = 5;
  opts.base_seed = 7;
  opts.jobs = 4;  // more workers than replicas would ever need
  const ReplicaRunner runner(opts);
  const std::vector<ReplicaResult> parallel = runner.run(spec);
  ASSERT_EQ(parallel.size(), 5u);
  for (std::size_t k = 0; k < parallel.size(); ++k) {
    EXPECT_EQ(parallel[k].replica, k);
    EXPECT_EQ(parallel[k].seed, replica_seed(7, k));
    // The same replica, run serially outside any pool, must match bit for bit.
    expect_bit_identical(parallel[k].run, run_scenario(spec, replica_seed(7, k)));
  }
}

TEST(GoldenDeterminism, ResultsIndependentOfPoolSize) {
  const ScenarioSpec spec = quick_single();
  const ReplicaRunner one({3, 99, 1});
  const ReplicaRunner four({3, 99, 4});
  const std::vector<ReplicaResult> a = one.run(spec);
  const std::vector<ReplicaResult> b = four.run(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) expect_bit_identical(a[k].run, b[k].run);
}

// --- aggregator --------------------------------------------------------------

TEST(Aggregator, FoldComputesTInterval) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const telemetry::MetricStats m = Aggregator::fold("x", xs);
  EXPECT_EQ(m.replicas, 4u);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_NEAR(m.stddev, 1.2909944, 1e-6);
  // t_{0.975,3} = 3.182: half-width = 3.182 * s / sqrt(4).
  EXPECT_NEAR(m.ci95_half, 3.182 * 1.2909944 / 2.0, 1e-5);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 4.0);
}

TEST(Aggregator, SingleReplicaIsAPointEstimate) {
  const telemetry::MetricStats m = Aggregator::fold("x", std::vector<double>{3.5});
  EXPECT_EQ(m.replicas, 1u);
  EXPECT_DOUBLE_EQ(m.mean, 3.5);
  EXPECT_DOUBLE_EQ(m.stddev, 0.0);
  EXPECT_DOUBLE_EQ(m.ci95_half, 0.0);
  EXPECT_THROW((void)Aggregator::fold("x", std::vector<double>{}), std::invalid_argument);
}

TEST(Aggregator, AggregateCoversTheLedger) {
  std::vector<ReplicaResult> replicas(3);
  for (std::size_t k = 0; k < replicas.size(); ++k) {
    replicas[k].replica = k;
    replicas[k].run.jobs_completed = 10 * (k + 1);
    replicas[k].run.completed_gpu_hours = 100.0 * static_cast<double>(k + 1);
    replicas[k].run.grid_totals.energy = util::megawatt_hours(2.0);
    replicas[k].run.grid_totals.carbon = util::kg_co2(5.0);
  }
  const std::vector<telemetry::MetricStats> stats = Aggregator::aggregate(replicas);
  ASSERT_EQ(stats.size(), Aggregator::default_metrics().size());
  const auto find = [&](const std::string& name) -> const telemetry::MetricStats& {
    const auto it = std::find_if(stats.begin(), stats.end(),
                                 [&](const telemetry::MetricStats& m) { return m.name == name; });
    EXPECT_NE(it, stats.end()) << name;
    return *it;
  };
  EXPECT_DOUBLE_EQ(find("jobs_completed").mean, 20.0);
  EXPECT_DOUBLE_EQ(find("completed_gpu_hours").mean, 200.0);
  EXPECT_DOUBLE_EQ(find("energy_mwh").mean, 2.0);
  EXPECT_DOUBLE_EQ(find("energy_mwh").stddev, 0.0);
  EXPECT_DOUBLE_EQ(find("co2_kg").mean, 5.0);
  EXPECT_THROW((void)Aggregator::aggregate(std::vector<ReplicaResult>{}),
               std::invalid_argument);
}

// --- exports -----------------------------------------------------------------

TEST(Exports, FormatCi) {
  EXPECT_EQ(telemetry::fmt_ci(12.345, 0.678), "12.35 ± 0.68");
  EXPECT_EQ(telemetry::fmt_ci(1.0, 0.5, 1), "1.0 ± 0.5");
}

TEST(Exports, TableCsvAndJsonCarryTheStats) {
  std::vector<telemetry::MetricStats> stats(1);
  stats[0] = {"co2_kg", 8, 100.0, 4.0, 3.34, 92.0, 106.0, {}};
  EXPECT_EQ(telemetry::experiment_table(stats).row_count(), 1u);
  const std::string csv = telemetry::experiment_csv(stats);
  EXPECT_NE(csv.find("metric,replicas,mean,stddev,ci95_half,min,max"), std::string::npos);
  EXPECT_NE(csv.find("co2_kg,8,"), std::string::npos);
  const std::string json = telemetry::experiment_json("quick\"quote", stats);
  EXPECT_NE(json.find("\"scenario\":\"quick\\\"quote\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"co2_kg\""), std::string::npos);
  EXPECT_NE(json.find("\"replicas\":8"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":100"), std::string::npos);
}

TEST(Exports, SweepTableAlignsMetricsByName) {
  telemetry::SweepPointStats a{"point_a", {{"co2_kg", 4, 10.0, 1.0, 0.5, 9.0, 11.0, {}}}};
  telemetry::SweepPointStats b{"point_b", {{"other", 4, 1.0, 0.1, 0.05, 0.9, 1.1, {}}}};
  const util::Table table = telemetry::sweep_table({a, b}, {"co2_kg"});
  EXPECT_EQ(table.row_count(), 2u);
  const std::string csv = telemetry::sweep_csv({a, b});
  EXPECT_NE(csv.find("point_a,co2_kg"), std::string::npos);
  const std::string json = telemetry::sweep_json("routers", {a, b});
  EXPECT_NE(json.find("\"sweep\":\"routers\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"point_a\""), std::string::npos);
}

// --- the seed-paired statistical regressions ---------------------------------
//
// Every headline policy claim in this repo has the same shape: the improved
// policy must hold mean CO2 at or below its baseline at equal (within 5%)
// delivered GPU-hours, and win the paired per-seed comparison on a clear
// majority — both policies see the same arrival streams and environments
// (same base seed => replica k's workload is identical under either), so
// the comparison is seed-paired by construction. One helper asserts that
// contract for all of them; the bench binaries (fleet_routing,
// forecast_sched, fleet_migration) run the full 20-replica versions with
// CI-annotated tables.

void expect_paired_co2_win(const ScenarioSpec& baseline, const ScenarioSpec& treatment,
                           std::size_t seeds, std::size_t min_wins,
                           std::uint64_t base_seed = 42) {
  const ReplicaRunner runner({seeds, base_seed, 0});
  const std::vector<ReplicaResult> base = runner.run(baseline);
  const std::vector<ReplicaResult> treat = runner.run(treatment);

  double base_co2 = 0.0, treat_co2 = 0.0, base_gpuh = 0.0, treat_gpuh = 0.0;
  std::size_t paired_wins = 0;
  for (std::size_t k = 0; k < seeds; ++k) {
    base_co2 += base[k].run.grid_totals.carbon.kilograms();
    treat_co2 += treat[k].run.grid_totals.carbon.kilograms();
    base_gpuh += base[k].run.completed_gpu_hours;
    treat_gpuh += treat[k].run.completed_gpu_hours;
    if (treat[k].run.grid_totals.carbon.kilograms() <=
        base[k].run.grid_totals.carbon.kilograms()) {
      ++paired_wins;
    }
  }
  // Equal work: mean completed GPU-hours within 5% of each other.
  ASSERT_GT(base_gpuh, 0.0);
  const double hours_ratio = treat_gpuh / base_gpuh;
  EXPECT_GT(hours_ratio, 0.95);
  EXPECT_LT(hours_ratio, 1.05);
  // The headline: lower mean CO2 across the ensemble, and not by luck.
  EXPECT_LE(treat_co2, base_co2) << treatment.label() << " vs " << baseline.label();
  EXPECT_GE(paired_wins, min_wins) << treatment.label() << " vs " << baseline.label();
}

// PR 1's claim: carbon_greedy routing beats round_robin on fleet CO2.
TEST(FleetRoutingRegression, CarbonGreedyBeatsRoundRobinOnMeanCo2) {
  ScenarioSpec spec;
  spec.mode = Mode::kFleet;
  spec.region_count = 3;
  spec.days = 14;
  spec.warmup_days = 2;
  ScenarioSpec greedy = spec;
  spec.router = "round_robin";
  greedy.router = "carbon_greedy";
  expect_paired_co2_win(spec, greedy, 20, /*min_wins=*/15, /*base_seed=*/20220101);
}

// PR 3's claims: forecast-driven scheduling and routing beat their reactive
// counterparts.
TEST(ForecastRegression, ForecastCarbonSchedulerBeatsReactiveOnMeanCo2) {
  ScenarioSpec spec;
  spec.start = {2021, 4};
  spec.rate_per_hour = 9.0;  // headroom so time-shifting can act
  spec.days = 14;
  spec.warmup_days = 2;
  ScenarioSpec predictive = spec;
  spec.scheduler = core::PolicyKind::kCarbonAware;
  predictive.scheduler = core::PolicyKind::kForecastCarbon;
  expect_paired_co2_win(spec, predictive, 10, /*min_wins=*/7);
}

TEST(ForecastRegression, CarbonForecastRouterBeatsGreedyOnMeanCo2) {
  ScenarioSpec spec;
  spec.mode = Mode::kFleet;
  spec.start = {2021, 7};
  spec.rate_per_hour = 16.0;  // hot fleet: backlog placement is the lever
  spec.days = 14;
  spec.warmup_days = 2;
  ScenarioSpec predictive = spec;
  spec.router = "carbon_greedy";
  predictive.router = "carbon_forecast";
  expect_paired_co2_win(spec, predictive, 10, /*min_wins=*/7);
}

// PR 4's claim: mid-run checkpoint migration beats admission-only
// carbon_forecast routing (bench/fleet_migration adds the
// CI-excludes-zero check on top of this contract).
TEST(MigrationRegression, CheckpointMigrationBeatsAdmissionOnlyOnMeanCo2) {
  ScenarioSpec spec;
  spec.mode = Mode::kFleet;
  spec.router = "carbon_forecast";
  spec.start = {2021, 7};
  spec.rate_per_hour = 14.0;  // hot: jobs routinely start on a dirty grid
  spec.days = 14;
  spec.warmup_days = 2;
  ScenarioSpec migrating = spec;
  spec.migration_policy = "off";
  migrating.migration_policy = "carbon";
  expect_paired_co2_win(spec, migrating, 10, /*min_wins=*/7);
}

}  // namespace
}  // namespace greenhpc::experiment
