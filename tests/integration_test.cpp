// Integration tests: cross-module behaviour of the full digital twin, and
// the experiment-index shapes from DESIGN.md asserted on (shortened)
// simulation windows. The full windows run in bench/.

#include <gtest/gtest.h>

#include <memory>

#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "sched/carbon_aware.hpp"
#include "stats/correlation.hpp"
#include "stats/regression.hpp"
#include "telemetry/report.hpp"
#include "workload/conferences.hpp"
#include "workload/training_model.hpp"

namespace greenhpc {
namespace {

using util::CivilDate;
using util::MonthKey;
using util::TimePoint;

/// One simulated 2020 on the reference twin (shared across tests; ~1 s).
class ReferenceYear : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dc_ = core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(), 42)
              .release();
    dc_->run_until(util::to_timepoint(CivilDate{2021, 1, 1}));
  }
  static void TearDownTestSuite() {
    delete dc_;
    dc_ = nullptr;
  }
  static core::Datacenter* dc_;
};

core::Datacenter* ReferenceYear::dc_ = nullptr;

TEST_F(ReferenceYear, PowerBandMatchesFig2Calibration) {
  for (const auto& m : dc_->monthly_power().monthly()) {
    EXPECT_GT(m.time_weighted_mean, 200.0) << m.month.label();
    EXPECT_LT(m.time_weighted_mean, 450.0) << m.month.label();
  }
}

TEST_F(ReferenceYear, Fig2PowerAnticorrelatedWithRenewables) {
  const auto power = dc_->monthly_power().means();
  std::vector<double> renew;
  for (const MonthKey& m : dc_->monthly_power().months())
    renew.push_back(dc_->fuel_mix().monthly_renewable_pct(m));
  EXPECT_LT(stats::pearson(power, renew), -0.2);
}

TEST_F(ReferenceYear, Fig4PowerTracksTemperature) {
  const auto power = dc_->monthly_power().means();
  std::vector<double> temp;
  for (const MonthKey& m : dc_->monthly_power().months())
    temp.push_back(dc_->weather().monthly_average(m).fahrenheit());
  EXPECT_GT(stats::spearman(temp, power), 0.75);
  EXPECT_GT(stats::linear_fit(temp, power).slope, 0.0);
}

TEST_F(ReferenceYear, SummerPowerExceedsWinter) {
  const auto monthly = dc_->monthly_power().monthly();
  double summer = 0.0, winter = 0.0;
  for (const auto& m : monthly) {
    if (m.month.month == 7 || m.month.month == 8) summer += m.time_weighted_mean / 2.0;
    if (m.month.month == 1 || m.month.month == 2) winter += m.time_weighted_mean / 2.0;
  }
  EXPECT_GT(summer, winter * 1.1);
}

TEST_F(ReferenceYear, UtilizationInOperatingBand) {
  const core::RunSummary s = dc_->summary();
  EXPECT_GT(s.mean_utilization, 0.4);
  EXPECT_LT(s.mean_utilization, 0.95);
}

TEST_F(ReferenceYear, PueSeasonallyPlausible) {
  const auto pue = dc_->monthly_pue().monthly();
  double january = 0.0, july = 0.0;
  for (const auto& m : pue) {
    if (m.month.month == 1) january = m.time_weighted_mean;
    if (m.month.month == 7) july = m.time_weighted_mean;
  }
  EXPECT_GT(january, 1.1);
  EXPECT_LT(january, 1.3);
  EXPECT_GT(july, january + 0.1);
  EXPECT_LT(july, 1.8);
}

TEST_F(ReferenceYear, JobAccountingCloses) {
  const core::RunSummary s = dc_->summary();
  const auto running = dc_->jobs().in_state(cluster::JobState::kRunning).size();
  const auto cancelled = dc_->jobs().in_state(cluster::JobState::kCancelled).size();
  EXPECT_EQ(s.jobs_submitted, s.jobs_completed + s.jobs_pending + running + cancelled);
  EXPECT_GT(s.jobs_completed, 50000u);  // a year of ~12 jobs/h modulated
  EXPECT_EQ(cancelled, 0u);
}

TEST_F(ReferenceYear, PerJobLedgersSumBelowFacilityMeter) {
  const double job_kwh = dc_->accountant().totals().energy.kilowatt_hours();
  const double meter_kwh = dc_->grid_meter().totals().energy.kilowatt_hours();
  EXPECT_GT(job_kwh, 0.2 * meter_kwh);  // GPUs carry a real share
  EXPECT_LT(job_kwh, meter_kwh);        // but never exceed the meter
}

TEST_F(ReferenceYear, ReportCardGeneratesForBusiestUser) {
  const auto users = dc_->accountant().by_user();
  ASSERT_FALSE(users.empty());
  const telemetry::ReportCard card(&dc_->accountant());
  const std::string board = card.user_leaderboard(3);
  EXPECT_NE(board.find(std::to_string(users[0].user)), std::string::npos);
  const std::string summary = card.cluster_summary();
  EXPECT_NE(summary.find("training"), std::string::npos);
}

TEST_F(ReferenceYear, MonthlySubmissionsTrackDeadlineSeason) {
  // March-June (pre-NeurIPS/EMNLP season) must out-submit October-December.
  const auto subs = dc_->monthly_submissions().monthly();
  double spring = 0.0, autumn = 0.0;
  for (const auto& m : subs) {
    if (m.month.month >= 3 && m.month.month <= 6) spring += static_cast<double>(m.samples);
    if (m.month.month >= 10) autumn += static_cast<double>(m.samples);
  }
  EXPECT_GT(spring / 4.0, autumn / 3.0);
}

// --- cross-module shapes on short windows -------------------------------------------

TEST(Shapes, PowerCapSavesEnergyPerWork) {
  // Two identical weeks, one capped at the 3%-slowdown optimum.
  auto run_with_cap = [](double cap_w) {
    class Fixed final : public sched::Scheduler {
     public:
      explicit Fixed(double w) : w_(w) {}
      const char* name() const override { return "fixed"; }
      std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
        return inner_.select(ctx);
      }
      util::Power choose_cap(const sched::SchedulerContext&) override { return util::watts(w_); }

     private:
      double w_;
      sched::EasyBackfillScheduler inner_;
    };
    core::DatacenterConfig config;
    core::Datacenter dc(config, std::make_unique<Fixed>(cap_w));
    dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    dc.run_until(TimePoint::from_seconds(10.0 * 86400.0));
    const core::RunSummary s = dc.summary();
    return s.grid_totals.energy.kilowatt_hours() / s.completed_gpu_hours;
  };
  const double uncapped = run_with_cap(250.0);
  const double capped = run_with_cap(200.0);
  EXPECT_LT(capped, uncapped);
}

TEST(Shapes, CarbonAwareLowersFlexibleJobIntensity) {
  auto run_policy = [](core::PolicyKind policy) {
    core::DatacenterConfig config;
    core::Datacenter dc(config, core::make_scheduler(policy));
    workload::ArrivalConfig arrivals;
    arrivals.base_rate_per_hour = 9.0;
    dc.attach_arrivals(arrivals, workload::DeadlineCalendar::standard());
    dc.run_until(TimePoint::from_seconds(21.0 * 86400.0));
    double intensity = 0.0;
    std::size_t n = 0;
    for (const telemetry::JobFootprint& fp : dc.accountant().all_jobs()) {
      const cluster::Job& job = dc.jobs().get(fp.job);
      if (!job.request().flexible || job.state() != cluster::JobState::kCompleted) continue;
      intensity += fp.carbon.kilograms() / fp.facility_energy.kilowatt_hours();
      ++n;
    }
    return intensity / static_cast<double>(n);
  };
  EXPECT_LT(run_policy(core::PolicyKind::kCarbonAware), run_policy(core::PolicyKind::kFcfs));
}

TEST(Shapes, BackfillShortensWaitsVsFcfs) {
  auto run_policy = [](core::PolicyKind policy) {
    core::DatacenterConfig config;
    core::Datacenter dc(config, core::make_scheduler(policy));
    workload::ArrivalConfig arrivals;
    arrivals.base_rate_per_hour = 17.0;  // push into contention
    dc.attach_arrivals(arrivals, workload::DeadlineCalendar::standard());
    dc.run_until(TimePoint::from_seconds(14.0 * 86400.0));
    return dc.summary().mean_queue_wait_hours;
  };
  EXPECT_LE(run_policy(core::PolicyKind::kBackfill), run_policy(core::PolicyKind::kFcfs));
}

TEST(Shapes, Fig1ModernEraIsDramaticallyFaster) {
  const workload::ComputeTrendModel trend;
  EXPECT_GT(trend.first_era().doubling_time / trend.modern_era().doubling_time, 4.0);
}

TEST(Shapes, Fig3SpringPricesLowWhenGreen) {
  const grid::FuelMixModel mix;
  const grid::LmpPriceModel prices(grid::PriceConfig{}, &mix);
  std::vector<double> lmp, renew;
  for (int m = 1; m <= 12; ++m) {
    lmp.push_back(prices.monthly_average(MonthKey{2021, m}).usd_per_mwh());
    renew.push_back(mix.monthly_renewable_pct(MonthKey{2021, m}));
  }
  EXPECT_LT(stats::pearson(lmp, renew), -0.3);
}

TEST(Shapes, EqOneOptimizationOnRealTwin) {
  // A small real Eq. 1 instance: minimize metered energy over caps subject
  // to completed GPU-hours >= alpha, on 4-day windows.
  auto evaluate = [](const core::ControlVector& cv) {
    class Fixed final : public sched::Scheduler {
     public:
      explicit Fixed(util::Power cap) : cap_(cap) {}
      const char* name() const override { return "fixed"; }
      std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
        return inner_.select(ctx);
      }
      util::Power choose_cap(const sched::SchedulerContext&) override { return cap_; }

     private:
      util::Power cap_;
      sched::EasyBackfillScheduler inner_;
    };
    core::DatacenterConfig config;
    core::Datacenter dc(config, std::make_unique<Fixed>(cv.power_cap));
    dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    dc.run_until(TimePoint::from_seconds(4.0 * 86400.0));
    core::Evaluation e;
    e.controls = cv;
    e.energy = dc.summary().grid_totals.energy.kilowatt_hours();
    e.activity = dc.summary().completed_gpu_hours;
    return e;
  };
  std::vector<core::ControlVector> candidates;
  for (double w : {250.0, 200.0, 150.0}) {
    core::ControlVector cv;
    cv.power_cap = util::watts(w);
    candidates.push_back(cv);
  }
  // Loose activity floor: all feasible; the tightest cap must win on energy.
  const core::OptimizationResult result = core::grid_search(evaluate, candidates, 1000.0, true);
  EXPECT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best.controls.power_cap.watts(), 150.0);
}

}  // namespace
}  // namespace greenhpc
