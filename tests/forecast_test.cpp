// Unit tests for greenhpc::forecast — models, metrics, backtesting, and the
// online RollingForecaster.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <span>
#include <vector>

#include "forecast/bank.hpp"
#include "forecast/hub.hpp"
#include "forecast/metrics.hpp"
#include "forecast/models.hpp"
#include "forecast/rolling.hpp"
#include "util/rng.hpp"

namespace greenhpc::forecast {
namespace {

std::vector<double> seasonal_series(std::size_t n, std::size_t period, double trend = 0.0,
                                    double noise = 0.0, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double season =
        10.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t % period) /
                        static_cast<double>(period));
    out.push_back(50.0 + season + trend * static_cast<double>(t) + noise * rng.normal());
  }
  return out;
}

// --- SeasonalNaive ---------------------------------------------------------------

TEST(SeasonalNaiveTest, RepeatsLastSeason) {
  SeasonalNaive model(4);
  const std::vector<double> series = {1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0};
  model.fit(series);
  const auto pred = model.predict(6);
  EXPECT_EQ(pred, (std::vector<double>{10.0, 20.0, 30.0, 40.0, 10.0, 20.0}));
}

TEST(SeasonalNaiveTest, PerfectOnPurelySeasonalData) {
  SeasonalNaive model(12);
  const auto series = seasonal_series(60, 12);
  model.fit(series);
  const auto pred = model.predict(12);
  for (std::size_t h = 0; h < 12; ++h) EXPECT_NEAR(pred[h], series[h % 12], 1e-9);
}

TEST(SeasonalNaiveTest, HorizonSpanningSeveralPeriodsWrapsExactly) {
  SeasonalNaive model(5);
  const std::vector<double> series = {9.0, 8.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  model.fit(series);
  const auto pred = model.predict(13);  // 2.6 periods
  ASSERT_EQ(pred.size(), 13u);
  for (std::size_t h = 0; h < pred.size(); ++h) {
    EXPECT_DOUBLE_EQ(pred[h], series[2 + (h % 5)]) << "h=" << h;
  }
}

TEST(SeasonalNaiveTest, UpdateSlidesTheSeasonWindow) {
  SeasonalNaive model(4);
  model.fit(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  model.update(10.0);
  EXPECT_EQ(model.predict(4), (std::vector<double>{2.0, 3.0, 4.0, 10.0}));
}

TEST(SeasonalNaiveTest, Validation) {
  SeasonalNaive model(12);
  EXPECT_THROW(model.fit(std::vector<double>{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)model.predict(3), std::invalid_argument);  // predict before fit
  EXPECT_THROW(SeasonalNaive(0), std::invalid_argument);
}

// --- ArModel -----------------------------------------------------------------------

TEST(ArModelTest, RecoversAr1Coefficients) {
  // x_t = 5 + 0.8 x_{t-1} + noise (noise gives the regressor the variance
  // OLS needs; a noise-free stationary AR(1) is a constant, i.e. singular).
  util::Rng rng(7);
  std::vector<double> series = {25.0};
  for (int t = 1; t < 4000; ++t)
    series.push_back(5.0 + 0.8 * series.back() + 1.0 * rng.normal());
  ArModel model(1);
  model.fit(series);
  ASSERT_EQ(model.coefficients().size(), 2u);
  EXPECT_NEAR(model.coefficients()[1], 0.8, 0.03);  // phi
  EXPECT_NEAR(model.coefficients()[0], 5.0, 0.8);   // intercept
}

TEST(ArModelTest, MultiStepConvergesToProcessMean) {
  // Start far from the mean so the transient gives OLS identifiable data.
  util::Rng rng(9);
  std::vector<double> series = {0.0};
  for (int t = 1; t < 600; ++t)
    series.push_back(5.0 + 0.8 * series.back() + 0.2 * rng.normal());
  ArModel model(1);
  model.fit(series);
  const auto pred = model.predict(300);
  EXPECT_NEAR(pred.back(), 25.0, 1.5);  // mean = 5/(1-0.8)
}

TEST(ArModelTest, CapturesSeasonalityWithEnoughLags) {
  // Noise breaks the exact collinearity of a pure sinusoid under 24 lags.
  const auto series = seasonal_series(400, 24, 0.0, /*noise=*/0.3, 13);
  ArModel model(24);
  model.fit(series);
  const auto pred = model.predict(24);
  for (std::size_t h = 0; h < 24; ++h) {
    const double truth =
        50.0 + 10.0 * std::sin(2.0 * std::numbers::pi *
                               static_cast<double>((400 + h) % 24) / 24.0);
    EXPECT_NEAR(pred[h], truth, 2.0) << "h=" << h;
  }
}

TEST(ArModelTest, RecursiveMultiStepMatchesClosedFormOnAr1) {
  // For a fitted AR(1) with coefficients (c, phi), the recursive multi-step
  // forecast has the closed form y_hat(h) = c*(1-phi^h)/(1-phi) + phi^h*y_n.
  util::Rng rng(11);
  std::vector<double> series = {0.0};
  for (int t = 1; t < 1000; ++t)
    series.push_back(3.0 + 0.7 * series.back() + 0.5 * rng.normal());
  ArModel model(1);
  model.fit(series);
  const double c = model.coefficients()[0];
  const double phi = model.coefficients()[1];
  const auto pred = model.predict(50);
  for (std::size_t h = 1; h <= pred.size(); ++h) {
    const double powh = std::pow(phi, static_cast<double>(h));
    const double closed = c * (1.0 - powh) / (1.0 - phi) + powh * series.back();
    EXPECT_NEAR(pred[h - 1], closed, 1e-9) << "h=" << h;
  }
}

TEST(ArModelTest, UpdateConditionsForecastOnLatestValue) {
  util::Rng rng(12);
  std::vector<double> series = {0.0};
  for (int t = 1; t < 500; ++t)
    series.push_back(3.0 + 0.7 * series.back() + 0.5 * rng.normal());
  ArModel model(1);
  model.fit(series);
  model.update(100.0);  // far above the process mean
  const double phi = model.coefficients()[1];
  EXPECT_NEAR(model.predict(1)[0], model.coefficients()[0] + phi * 100.0, 1e-9);
}

TEST(ArModelTest, Validation) {
  EXPECT_THROW(ArModel(0), std::invalid_argument);
  ArModel model(10);
  EXPECT_THROW(model.fit(std::vector<double>(15, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)model.predict(4), std::invalid_argument);
}

// --- HoltWinters ---------------------------------------------------------------------

TEST(HoltWintersTest, TracksTrendPlusSeason) {
  const auto series = seasonal_series(120, 12, /*trend=*/0.5);
  HoltWinters model(12);
  model.fit(series);
  const auto pred = model.predict(12);
  // Compare against the true continuation.
  for (std::size_t h = 0; h < 12; ++h) {
    const double t = 120.0 + static_cast<double>(h);
    const double truth = 50.0 +
                         10.0 * std::sin(2.0 * std::numbers::pi *
                                         std::fmod(t, 12.0) / 12.0) +
                         0.5 * t;
    EXPECT_NEAR(pred[h], truth, 2.5) << "h=" << h;
  }
  EXPECT_NEAR(model.trend(), 0.5, 0.1);
}

TEST(HoltWintersTest, SeasonalComponentsSumNearZero) {
  const auto series = seasonal_series(96, 12);
  HoltWinters model(12);
  model.fit(series);
  double sum = 0.0;
  for (double s : model.seasonal()) sum += s;
  EXPECT_NEAR(sum / 12.0, 0.0, 1.0);
}

TEST(HoltWintersTest, SeasonalIndexWrapsForHorizonBeyondPeriod) {
  // Additive HW repeats its seasonal cycle with a per-period trend offset:
  // pred[h + P] - pred[h] must equal P * trend for every h.
  const auto series = seasonal_series(120, 12, /*trend=*/0.4, /*noise=*/0.2, 17);
  HoltWinters model(12);
  model.fit(series);
  const auto pred = model.predict(36);  // three full periods
  ASSERT_EQ(pred.size(), 36u);
  for (std::size_t h = 0; h + 12 < pred.size(); ++h) {
    EXPECT_NEAR(pred[h + 12] - pred[h], 12.0 * model.trend(), 1e-9) << "h=" << h;
  }
}

TEST(HoltWintersTest, UpdateMatchesRefitOnExtendedSeries) {
  // Online update must be bit-identical to refitting on the series plus the
  // new observation (same initialization, same smoothing recursions).
  auto series = seasonal_series(96, 12, 0.3, 0.5, 19);
  HoltWinters online(12);
  online.fit(series);
  online.update(57.5);
  series.push_back(57.5);
  HoltWinters refit(12);
  refit.fit(series);
  EXPECT_DOUBLE_EQ(online.level(), refit.level());
  EXPECT_DOUBLE_EQ(online.trend(), refit.trend());
  EXPECT_EQ(online.predict(12), refit.predict(12));
}

TEST(HoltWintersTest, Validation) {
  EXPECT_THROW(HoltWinters(1), std::invalid_argument);
  EXPECT_THROW(HoltWinters(12, HoltWinters::Params{.alpha = 1.5}), std::invalid_argument);
  HoltWinters model(12);
  EXPECT_THROW(model.fit(std::vector<double>(20, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)model.predict(4), std::invalid_argument);
}

// --- SeasonalClimatology --------------------------------------------------------------

TEST(ClimatologyTest, SlotMeansAverageAcrossSeasons) {
  SeasonalClimatology model(4);
  // Two seasons whose anomalies alternate sign sample to sample: the lag-1
  // autocorrelation is negative (clamped to 0) and the prediction is the
  // pure per-slot mean.
  model.fit(std::vector<double>{1.0, 4.0, 3.0, 6.0, 3.0, 2.0, 5.0, 4.0});
  EXPECT_DOUBLE_EQ(model.anomaly_rho(), 0.0);
  EXPECT_EQ(model.predict(4), (std::vector<double>{2.0, 3.0, 4.0, 5.0}));
}

TEST(ClimatologyTest, AnomalyPersistenceCarriesTheCurrentDeviation) {
  // A seasonal signal riding on a slowly-varying offset: anomalies are
  // strongly autocorrelated, so the fitted rho is high and a positive
  // current anomaly lifts near-term predictions above the slot means.
  std::vector<double> series;
  for (int t = 0; t < 240; ++t) {
    const double season = 10.0 * std::sin(2.0 * std::numbers::pi * (t % 24) / 24.0);
    const double offset = 5.0 * std::sin(2.0 * std::numbers::pi * t / 240.0);
    series.push_back(50.0 + season + offset);
  }
  SeasonalClimatology model(24);
  model.fit(series);
  EXPECT_GT(model.anomaly_rho(), 0.8);
  model.update(80.0);  // large positive anomaly
  const auto pred = model.predict(48);
  // pred[i] targets slot (fitted_length + i) % period with fitted_length 241.
  const auto slot_of = [&](std::size_t i) { return model.slot_means()[(241 + i) % 24]; };
  // Near-term: pulled up by the anomaly. Far end: decayed back toward the
  // climatology (anomaly contribution shrinks monotonically in rho^h).
  EXPECT_GT(pred[0], slot_of(0) + 5.0);
  EXPECT_LT(std::abs(pred[47] - slot_of(47)), std::abs(pred[0] - slot_of(0)));
}

TEST(ClimatologyTest, Validation) {
  EXPECT_THROW(SeasonalClimatology(0), std::invalid_argument);
  SeasonalClimatology model(12);
  EXPECT_THROW(model.fit(std::vector<double>{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)model.predict(3), std::invalid_argument);
  EXPECT_THROW(model.update(1.0), std::invalid_argument);
}

// --- RollingForecaster ----------------------------------------------------------------

TEST(RollingForecasterTest, WarmsUpInfersCadenceAndTracksADiurnalSignal) {
  RollingForecaster fc;  // climatology, 24 h horizon
  EXPECT_FALSE(fc.ready());
  EXPECT_THROW((void)fc.predict(4), std::invalid_argument);

  auto value_at = [](double hours) {
    return 0.30 + 0.05 * std::sin(2.0 * std::numbers::pi * hours / 24.0);
  };
  util::TimePoint t = util::TimePoint::from_seconds(0.0);
  for (int i = 0; i < 3 * 96; ++i) {  // three days at 15-minute cadence
    fc.observe(t, value_at(t.seconds_since_epoch() / 3600.0));
    t = t + util::minutes(15);
  }
  EXPECT_TRUE(fc.ready());
  EXPECT_DOUBLE_EQ(fc.cadence().minutes(), 15.0);
  EXPECT_EQ(fc.horizon_steps(), 96u);

  const auto pred = fc.predict(96);
  ASSERT_EQ(pred.size(), 96u);
  for (std::size_t h = 0; h < pred.size(); ++h) {
    const double hours = (t.seconds_since_epoch() + (h * 900.0)) / 3600.0;
    EXPECT_NEAR(pred[h], value_at(hours), 0.01) << "h=" << h;
  }
}

TEST(RollingForecasterTest, RepeatedTimestampsAreIgnored) {
  RollingForecaster fc;
  const util::TimePoint t = util::TimePoint::from_seconds(0.0);
  fc.observe(t, 1.0);
  fc.observe(t, 2.0);  // same step observed twice (router + coordinator)
  EXPECT_EQ(fc.samples(), 1u);
  fc.observe(t + util::minutes(15), 3.0);
  EXPECT_EQ(fc.samples(), 2u);
  EXPECT_DOUBLE_EQ(fc.cadence().minutes(), 15.0);
}

TEST(RollingForecasterTest, RealizedMapeGateTripsWhenTheSignalTurnsAdversarial) {
  RollingForecasterConfig config;
  config.horizon = util::hours(1);  // score quickly (4 steps at 15 min)
  RollingForecaster fc(config);

  auto diurnal = [](double hours) {
    return 0.30 + 0.05 * std::sin(2.0 * std::numbers::pi * hours / 24.0);
  };
  util::TimePoint t = util::TimePoint::from_seconds(0.0);
  // Two predictable days: the forecaster earns trust.
  for (int i = 0; i < 2 * 96; ++i) {
    fc.observe(t, diurnal(t.seconds_since_epoch() / 3600.0));
    t = t + util::minutes(15);
  }
  ASSERT_TRUE(fc.reliable());
  EXPECT_LT(fc.realized_mape_pct(), 10.0);
  // The signal goes adversarial: large alternating jumps no seasonal model
  // can track. The realized MAPE must climb past the gate.
  for (int i = 0; i < 2 * 96; ++i) {
    fc.observe(t, i % 2 == 0 ? 1.2 : 0.05);
    t = t + util::minutes(15);
  }
  EXPECT_TRUE(fc.ready());
  EXPECT_FALSE(fc.reliable());
  EXPECT_GT(fc.realized_mape_pct(), fc.config().mape_gate_pct);
}

TEST(RollingForecasterTest, SkillReportCarriesTheTelemetryFields) {
  RollingForecaster fc;
  util::TimePoint t = util::TimePoint::from_seconds(0.0);
  for (int i = 0; i < 2 * 96; ++i) {
    fc.observe(t, 0.3 + 0.01 * (i % 7));
    t = t + util::minutes(15);
  }
  const SkillReport report = fc.skill("carbon");
  EXPECT_EQ(report.signal, "carbon");
  EXPECT_EQ(report.model, "climatology");
  EXPECT_EQ(report.samples, fc.samples());
  EXPECT_EQ(report.scored, fc.scored());
  EXPECT_TRUE(report.reliable);
}

TEST(RollingForecasterTest, ModelFactoryValidation) {
  EXPECT_TRUE(model_known("climatology"));
  EXPECT_FALSE(model_known("oracle"));
  EXPECT_THROW((void)make_model("oracle", 96), std::invalid_argument);
  RollingForecasterConfig bad;
  bad.model = "oracle";
  EXPECT_THROW(RollingForecaster{bad}, std::invalid_argument);
}

// --- incremental refits vs batch fits --------------------------------------
//
// The rolling wrapper's incremental refit path (Forecaster::track/refit)
// must be indistinguishable from batch-fitting the same window: bit-exact
// for seasonal_naive and climatology (their sufficient statistics reproduce
// the batch arithmetic operation for operation), near-exact for ar (evicting
// a design row from the online normal equations reassociates the
// floating-point sums), and trivially exact for holt_winters (it has no
// incremental path; its refit IS the zero-copy batch fit).

/// Streams `total` quarter-hour samples of a noisy diurnal signal.
RollingForecaster streamed(const std::string& model, std::size_t total, double noise,
                           std::uint64_t seed) {
  RollingForecasterConfig config;
  config.model = model;
  RollingForecaster fc(config);
  util::Rng rng(seed);
  util::TimePoint t = util::TimePoint::from_seconds(0.0);
  for (std::size_t i = 0; i < total; ++i) {
    const double hours = t.seconds_since_epoch() / 3600.0;
    const double value = 0.30 + 0.10 * std::sin(2.0 * std::numbers::pi * hours / 24.0) +
                         noise * rng.normal();
    fc.observe(t, value);
    t = t + util::minutes(15);
  }
  return fc;
}

/// Observations that land the stream exactly on a refit step: the first fit
/// happens when the history reaches min_history, and a refit every 6 h of
/// 15-minute samples thereafter (24 steps).
std::size_t refit_aligned_total(const std::string& model, std::size_t refits) {
  return make_model(model, 96)->min_history() + 24 * refits;
}

TEST(IncrementalRefit, ExactModelsMatchBatchBitForBit) {
  for (const std::string model : {"seasonal_naive", "climatology", "holt_winters"}) {
    // Long enough that the 7-day ring saturates and slides through many
    // window positions before the final refit.
    const RollingForecaster fc = streamed(model, refit_aligned_total(model, 40), 0.02, 5);
    ASSERT_TRUE(fc.ready()) << model;
    const std::vector<double> window = fc.window();
    const std::unique_ptr<Forecaster> batch = make_model(model, 96);
    batch->fit(window);
    EXPECT_EQ(fc.predict(96), batch->predict(96)) << model;
  }
}

TEST(IncrementalRefit, ClimatologyParametersMatchBatch) {
  const RollingForecaster fc = streamed("climatology", refit_aligned_total("climatology", 40),
                                        0.02, 7);
  const auto* online = dynamic_cast<const SeasonalClimatology*>(fc.model());
  ASSERT_NE(online, nullptr);
  SeasonalClimatology batch(96);
  batch.fit(fc.window());
  EXPECT_EQ(online->slot_means(), batch.slot_means());  // exact, every slot
  EXPECT_EQ(online->anomaly_rho(), batch.anomaly_rho());
}

TEST(IncrementalRefit, ArNormalEquationsMatchBatchToTolerance) {
  // More noise than the exact-model test: OLS over 96 near-collinear lags of
  // a clean sinusoid would be ill-conditioned, which tests the solver, not
  // the statistics.
  const RollingForecaster fc = streamed("ar", refit_aligned_total("ar", 40), 0.05, 11);
  const auto* online = dynamic_cast<const ArModel*>(fc.model());
  ASSERT_NE(online, nullptr);
  ArModel batch(96);
  batch.fit(fc.window());
  ASSERT_EQ(online->coefficients().size(), batch.coefficients().size());
  for (std::size_t i = 0; i < batch.coefficients().size(); ++i) {
    EXPECT_NEAR(online->coefficients()[i], batch.coefficients()[i],
                1e-6 * std::max(1.0, std::abs(batch.coefficients()[i])))
        << "coefficient " << i;
  }
  const std::vector<double> got = fc.predict(96);
  const std::vector<double> want = batch.predict(96);
  for (std::size_t h = 0; h < want.size(); ++h) {
    EXPECT_NEAR(got[h], want[h], 1e-7 * std::max(1.0, std::abs(want[h]))) << "h=" << h;
  }
}

TEST(IncrementalRefit, ArDebugCrossCheckHoldsOverManyRefits) {
  // With the cross-check armed, every Cholesky-solved refit also runs the
  // batch Gaussian solve and throws beyond 1e-6 relative disagreement.
  // Streaming 40 refits (crossing two forced refactorizations of the
  // maintained factor) must stay silent.
  constexpr std::size_t kOrder = 24;
  constexpr std::size_t kWindow = 24 * 8;
  constexpr std::size_t kSlide = 4;
  constexpr std::size_t kRefits = 40;
  const auto series = seasonal_series(kWindow + kSlide * kRefits, 24, 0.0, 0.5, 29);
  const std::span<const double> all(series);

  ArModel model(kOrder);
  model.set_debug_cross_check(true);
  model.fit(all.subspan(0, kWindow));
  for (std::size_t t = kWindow; t < series.size(); ++t) {
    const double evicted = series[t - kWindow];
    model.track(series[t], &evicted);
    if ((t - kWindow + 1) % kSlide == 0) {
      const SeriesView window{all.subspan(t + 1 - kWindow, kWindow), {}};
      EXPECT_TRUE(model.refit(window));
    }
  }
}

TEST(IncrementalRefit, SeriesViewFitMatchesSpanFit) {
  // The zero-copy two-chunk fit is the same arithmetic as the contiguous
  // one, for every model.
  const auto series = seasonal_series(300, 24, 0.2, 0.3, 23);
  for (const std::string name : {"seasonal_naive", "climatology", "ar", "holt_winters"}) {
    const std::unique_ptr<Forecaster> whole = make_model(name, 24);
    whole->fit(series);
    const std::unique_ptr<Forecaster> split = make_model(name, 24);
    const std::size_t cut = 131;  // deliberately unaligned with the period
    split->fit(SeriesView{std::span(series).subspan(0, cut), std::span(series).subspan(cut)});
    EXPECT_EQ(whole->predict(48), split->predict(48)) << name;
  }
}

TEST(IncrementalRefit, PredictPointMatchesPredictBack) {
  for (const std::string name : {"seasonal_naive", "climatology", "ar", "holt_winters"}) {
    const std::unique_ptr<Forecaster> model = make_model(name, 24);
    model->fit(seasonal_series(200, 24, 0.1, 0.4, 29));
    for (const std::size_t h : {1u, 7u, 24u, 60u}) {
      EXPECT_EQ(model->predict_point(h), model->predict(h).back()) << name << " h=" << h;
    }
  }
}

// --- the bank's prefix-sum integral cache ------------------------------------

TEST(ForecasterBank, PrefixSumIntegralMatchesDirectAverageBitForBit) {
  const RollingForecasterConfig config;
  ForecasterBank bank(config);
  RollingForecaster shadow(config);  // same stream, queried the pre-cache way

  util::TimePoint t = util::TimePoint::from_seconds(0.0);
  for (int i = 0; i < 4 * 96; ++i) {
    const double hours = t.seconds_since_epoch() / 3600.0;
    const double value = 0.30 + 0.05 * std::sin(2.0 * std::numbers::pi * hours / 24.0);
    bank.observe(t, 0, value, "carbon");
    shadow.observe(t, value);
    t = t + util::minutes(15);
  }
  ASSERT_TRUE(shadow.reliable());

  const auto direct = [&](util::Duration runtime) {
    const auto steps = static_cast<std::size_t>(
        std::clamp<double>(std::ceil(runtime / shadow.cadence()), 1.0,
                           static_cast<double>(shadow.horizon_steps())));
    const std::vector<double> predicted = shadow.predict(steps);
    double total = 0.0;
    for (double v : predicted) total += v;
    return total / static_cast<double>(predicted.size());
  };
  for (const double hours : {0.25, 1.0, 3.7, 11.0, 24.0, 500.0}) {
    const util::Duration runtime = util::hours(hours);
    EXPECT_EQ(bank.integrated_signal(0, runtime, 9.9), direct(runtime)) << hours << " h";
    // Second query the same step hits the cache; must stay identical.
    EXPECT_EQ(bank.integrated_signal(0, runtime, 9.9), direct(runtime)) << hours << " h";
  }

  // A new observation invalidates the cache: the answers follow the stream.
  bank.observe(t, 0, 0.42, "carbon");
  shadow.observe(t, 0.42);
  EXPECT_EQ(bank.integrated_signal(0, util::hours(6.0), 9.9), direct(util::hours(6.0)));

  // Unknown sources fall back to the instantaneous signal.
  EXPECT_EQ(bank.integrated_signal(7, util::hours(6.0), 0.42), 0.42);
}

// --- the shared forecaster hub -----------------------------------------------

TEST(ForecasterHub, SharesOneBankPerSignalAndRefusesDriftedConfigs) {
  const RollingForecasterConfig config;
  ForecasterHub hub(config);
  const std::shared_ptr<ForecasterBank> a = hub.attach(SignalKind::kCarbon, config);
  const std::shared_ptr<ForecasterBank> b = hub.attach(SignalKind::kCarbon, config);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // same signal, same config -> one bank

  const std::shared_ptr<ForecasterBank> p = hub.attach(SignalKind::kPrice, config);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(a.get(), p.get());  // different signals never share state
  EXPECT_EQ(hub.banks_created(), 2u);

  RollingForecasterConfig drifted;
  drifted.horizon = util::hours(48);
  EXPECT_EQ(hub.attach(SignalKind::kCarbon, drifted), nullptr);  // keep private
  EXPECT_EQ(hub.banks_created(), 2u);
}

TEST(ForecasterHub, SharedBankMatchesTwoPrivateBanksBitForBit) {
  // The hub's core claim at the bank level: one shared bank observed by two
  // consumers (second observe per step deduplicated) carries exactly the
  // state two private banks fed the same stream would.
  const RollingForecasterConfig config;
  ForecasterHub hub(config);
  const std::shared_ptr<ForecasterBank> shared = hub.attach(SignalKind::kCarbon, config);
  ForecasterBank router_private(config);
  ForecasterBank planner_private(config);

  util::Rng rng(31);
  util::TimePoint t = util::TimePoint::from_seconds(0.0);
  for (int i = 0; i < 6 * 96; ++i) {
    for (std::size_t region = 0; region < 3; ++region) {
      const double hours = t.seconds_since_epoch() / 3600.0;
      const double value = 0.3 + 0.05 * std::sin(2.0 * std::numbers::pi * hours / 24.0) +
                           0.01 * static_cast<double>(region) + 0.005 * rng.normal();
      shared->observe(t, region, value, "carbon");  // consumer 1
      shared->observe(t, region, value, "carbon");  // consumer 2 (deduplicated)
      router_private.observe(t, region, value, "carbon");
      planner_private.observe(t, region, value, "carbon");
    }
    t = t + util::minutes(15);
  }
  for (std::size_t region = 0; region < 3; ++region) {
    for (const double hours : {0.5, 4.0, 24.0}) {
      const double a = shared->integrated_signal(region, util::hours(hours), 1.0);
      EXPECT_EQ(a, router_private.integrated_signal(region, util::hours(hours), 1.0));
      EXPECT_EQ(a, planner_private.integrated_signal(region, util::hours(hours), 1.0));
    }
    const SkillReport s = shared->skills()[region];
    const SkillReport r = router_private.skills()[region];
    EXPECT_EQ(s.mape_pct, r.mape_pct);
    EXPECT_EQ(s.scored, r.scored);
    EXPECT_EQ(s.reliable, r.reliable);
  }
}

// --- metrics ------------------------------------------------------------------------

TEST(Metrics, MaeRmseMape) {
  const std::vector<double> truth = {10.0, 20.0, 30.0};
  const std::vector<double> pred = {12.0, 18.0, 33.0};
  EXPECT_NEAR(mae(truth, pred), (2.0 + 2.0 + 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(rmse(truth, pred), std::sqrt((4.0 + 4.0 + 9.0) / 3.0), 1e-12);
  EXPECT_NEAR(mape(truth, pred), 100.0 * (0.2 + 0.1 + 0.1) / 3.0, 1e-9);
}

TEST(Metrics, PerfectPredictionScoresZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mae(xs, xs), 0.0);
  EXPECT_DOUBLE_EQ(rmse(xs, xs), 0.0);
}

TEST(Metrics, Validation) {
  EXPECT_THROW((void)mae(std::vector<double>{1.0}, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)mape(std::vector<double>{0.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

// --- backtest ------------------------------------------------------------------------

TEST(Backtest, RollingOriginCountsFolds) {
  const auto series = seasonal_series(100, 12);
  SeasonalNaive model(12);
  const BacktestResult result = backtest(model, series, 48, 12, 12);
  // Origins: 48, 60, 72, 84 (96+12 > 100 excluded) -> 4 folds.
  EXPECT_EQ(result.folds, 4u);
  EXPECT_NEAR(result.rmse, 0.0, 1e-9);  // purely seasonal: naive is perfect
}

TEST(Backtest, BetterModelGetsPositiveSkill) {
  // Trending series: seasonal naive lags the trend; Holt-Winters tracks it.
  const auto series = seasonal_series(144, 12, /*trend=*/1.0, /*noise=*/0.2);
  SeasonalNaive naive(12);
  HoltWinters hw(12);
  const BacktestResult base = backtest(naive, series, 60, 12, 6);
  const BacktestResult better = with_skill(backtest(hw, series, 60, 12, 6), base);
  EXPECT_GT(better.skill, 0.3);
  EXPECT_LT(better.rmse, base.rmse);
}

TEST(Backtest, Validation) {
  SeasonalNaive model(12);
  const std::vector<double> tiny(15, 1.0);
  EXPECT_THROW((void)backtest(model, tiny, 12, 12), std::invalid_argument);
  const auto series = seasonal_series(100, 12);
  EXPECT_THROW((void)backtest(model, series, 48, 0), std::invalid_argument);
}

// Parameterized: every model beats (or ties) a flat-mean guess on a
// seasonal+trend series, across horizons.
class ModelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModelSweep, BeatsFlatMeanOnStructuredSeries) {
  const std::size_t horizon = GetParam();
  const auto series = seasonal_series(150, 12, 0.3, 0.3, 11);

  // Flat-mean baseline RMSE over the same folds.
  class FlatMean final : public Forecaster {
   public:
    const char* name() const override { return "flat"; }
    void fit(std::span<const double> s) override {
      double total = 0.0;
      for (double v : s) total += v;
      mean_ = total / static_cast<double>(s.size());
    }
    std::vector<double> predict(std::size_t h) const override {
      return std::vector<double>(h, mean_);
    }
    std::size_t min_history() const override { return 1; }

   private:
    double mean_ = 0.0;
  };

  FlatMean flat;
  HoltWinters hw(12);
  const BacktestResult flat_result = backtest(flat, series, 60, horizon, 6);
  const BacktestResult hw_result = backtest(hw, series, 60, horizon, 6);
  EXPECT_LT(hw_result.rmse, flat_result.rmse) << "horizon " << horizon;
}

INSTANTIATE_TEST_SUITE_P(Horizons, ModelSweep, ::testing::Values(1u, 6u, 12u, 36u));

}  // namespace
}  // namespace greenhpc::forecast
