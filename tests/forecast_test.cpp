// Unit tests for greenhpc::forecast — models, metrics, backtesting.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "forecast/metrics.hpp"
#include "forecast/models.hpp"
#include "util/rng.hpp"

namespace greenhpc::forecast {
namespace {

std::vector<double> seasonal_series(std::size_t n, std::size_t period, double trend = 0.0,
                                    double noise = 0.0, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double season =
        10.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t % period) /
                        static_cast<double>(period));
    out.push_back(50.0 + season + trend * static_cast<double>(t) + noise * rng.normal());
  }
  return out;
}

// --- SeasonalNaive ---------------------------------------------------------------

TEST(SeasonalNaiveTest, RepeatsLastSeason) {
  SeasonalNaive model(4);
  const std::vector<double> series = {1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0};
  model.fit(series);
  const auto pred = model.predict(6);
  EXPECT_EQ(pred, (std::vector<double>{10.0, 20.0, 30.0, 40.0, 10.0, 20.0}));
}

TEST(SeasonalNaiveTest, PerfectOnPurelySeasonalData) {
  SeasonalNaive model(12);
  const auto series = seasonal_series(60, 12);
  model.fit(series);
  const auto pred = model.predict(12);
  for (std::size_t h = 0; h < 12; ++h) EXPECT_NEAR(pred[h], series[h % 12], 1e-9);
}

TEST(SeasonalNaiveTest, Validation) {
  SeasonalNaive model(12);
  EXPECT_THROW(model.fit(std::vector<double>{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)model.predict(3), std::invalid_argument);  // predict before fit
  EXPECT_THROW(SeasonalNaive(0), std::invalid_argument);
}

// --- ArModel -----------------------------------------------------------------------

TEST(ArModelTest, RecoversAr1Coefficients) {
  // x_t = 5 + 0.8 x_{t-1} + noise (noise gives the regressor the variance
  // OLS needs; a noise-free stationary AR(1) is a constant, i.e. singular).
  util::Rng rng(7);
  std::vector<double> series = {25.0};
  for (int t = 1; t < 4000; ++t)
    series.push_back(5.0 + 0.8 * series.back() + 1.0 * rng.normal());
  ArModel model(1);
  model.fit(series);
  ASSERT_EQ(model.coefficients().size(), 2u);
  EXPECT_NEAR(model.coefficients()[1], 0.8, 0.03);  // phi
  EXPECT_NEAR(model.coefficients()[0], 5.0, 0.8);   // intercept
}

TEST(ArModelTest, MultiStepConvergesToProcessMean) {
  // Start far from the mean so the transient gives OLS identifiable data.
  util::Rng rng(9);
  std::vector<double> series = {0.0};
  for (int t = 1; t < 600; ++t)
    series.push_back(5.0 + 0.8 * series.back() + 0.2 * rng.normal());
  ArModel model(1);
  model.fit(series);
  const auto pred = model.predict(300);
  EXPECT_NEAR(pred.back(), 25.0, 1.5);  // mean = 5/(1-0.8)
}

TEST(ArModelTest, CapturesSeasonalityWithEnoughLags) {
  // Noise breaks the exact collinearity of a pure sinusoid under 24 lags.
  const auto series = seasonal_series(400, 24, 0.0, /*noise=*/0.3, 13);
  ArModel model(24);
  model.fit(series);
  const auto pred = model.predict(24);
  for (std::size_t h = 0; h < 24; ++h) {
    const double truth =
        50.0 + 10.0 * std::sin(2.0 * std::numbers::pi *
                               static_cast<double>((400 + h) % 24) / 24.0);
    EXPECT_NEAR(pred[h], truth, 2.0) << "h=" << h;
  }
}

TEST(ArModelTest, Validation) {
  EXPECT_THROW(ArModel(0), std::invalid_argument);
  ArModel model(10);
  EXPECT_THROW(model.fit(std::vector<double>(15, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)model.predict(4), std::invalid_argument);
}

// --- HoltWinters ---------------------------------------------------------------------

TEST(HoltWintersTest, TracksTrendPlusSeason) {
  const auto series = seasonal_series(120, 12, /*trend=*/0.5);
  HoltWinters model(12);
  model.fit(series);
  const auto pred = model.predict(12);
  // Compare against the true continuation.
  for (std::size_t h = 0; h < 12; ++h) {
    const double t = 120.0 + static_cast<double>(h);
    const double truth = 50.0 +
                         10.0 * std::sin(2.0 * std::numbers::pi *
                                         std::fmod(t, 12.0) / 12.0) +
                         0.5 * t;
    EXPECT_NEAR(pred[h], truth, 2.5) << "h=" << h;
  }
  EXPECT_NEAR(model.trend(), 0.5, 0.1);
}

TEST(HoltWintersTest, SeasonalComponentsSumNearZero) {
  const auto series = seasonal_series(96, 12);
  HoltWinters model(12);
  model.fit(series);
  double sum = 0.0;
  for (double s : model.seasonal()) sum += s;
  EXPECT_NEAR(sum / 12.0, 0.0, 1.0);
}

TEST(HoltWintersTest, Validation) {
  EXPECT_THROW(HoltWinters(1), std::invalid_argument);
  EXPECT_THROW(HoltWinters(12, HoltWinters::Params{.alpha = 1.5}), std::invalid_argument);
  HoltWinters model(12);
  EXPECT_THROW(model.fit(std::vector<double>(20, 1.0)), std::invalid_argument);
  EXPECT_THROW((void)model.predict(4), std::invalid_argument);
}

// --- metrics ------------------------------------------------------------------------

TEST(Metrics, MaeRmseMape) {
  const std::vector<double> truth = {10.0, 20.0, 30.0};
  const std::vector<double> pred = {12.0, 18.0, 33.0};
  EXPECT_NEAR(mae(truth, pred), (2.0 + 2.0 + 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(rmse(truth, pred), std::sqrt((4.0 + 4.0 + 9.0) / 3.0), 1e-12);
  EXPECT_NEAR(mape(truth, pred), 100.0 * (0.2 + 0.1 + 0.1) / 3.0, 1e-9);
}

TEST(Metrics, PerfectPredictionScoresZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mae(xs, xs), 0.0);
  EXPECT_DOUBLE_EQ(rmse(xs, xs), 0.0);
}

TEST(Metrics, Validation) {
  EXPECT_THROW((void)mae(std::vector<double>{1.0}, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)mape(std::vector<double>{0.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

// --- backtest ------------------------------------------------------------------------

TEST(Backtest, RollingOriginCountsFolds) {
  const auto series = seasonal_series(100, 12);
  SeasonalNaive model(12);
  const BacktestResult result = backtest(model, series, 48, 12, 12);
  // Origins: 48, 60, 72, 84 (96+12 > 100 excluded) -> 4 folds.
  EXPECT_EQ(result.folds, 4u);
  EXPECT_NEAR(result.rmse, 0.0, 1e-9);  // purely seasonal: naive is perfect
}

TEST(Backtest, BetterModelGetsPositiveSkill) {
  // Trending series: seasonal naive lags the trend; Holt-Winters tracks it.
  const auto series = seasonal_series(144, 12, /*trend=*/1.0, /*noise=*/0.2);
  SeasonalNaive naive(12);
  HoltWinters hw(12);
  const BacktestResult base = backtest(naive, series, 60, 12, 6);
  const BacktestResult better = with_skill(backtest(hw, series, 60, 12, 6), base);
  EXPECT_GT(better.skill, 0.3);
  EXPECT_LT(better.rmse, base.rmse);
}

TEST(Backtest, Validation) {
  SeasonalNaive model(12);
  const std::vector<double> tiny(15, 1.0);
  EXPECT_THROW((void)backtest(model, tiny, 12, 12), std::invalid_argument);
  const auto series = seasonal_series(100, 12);
  EXPECT_THROW((void)backtest(model, series, 48, 0), std::invalid_argument);
}

// Parameterized: every model beats (or ties) a flat-mean guess on a
// seasonal+trend series, across horizons.
class ModelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModelSweep, BeatsFlatMeanOnStructuredSeries) {
  const std::size_t horizon = GetParam();
  const auto series = seasonal_series(150, 12, 0.3, 0.3, 11);

  // Flat-mean baseline RMSE over the same folds.
  class FlatMean final : public Forecaster {
   public:
    const char* name() const override { return "flat"; }
    void fit(std::span<const double> s) override {
      double total = 0.0;
      for (double v : s) total += v;
      mean_ = total / static_cast<double>(s.size());
    }
    std::vector<double> predict(std::size_t h) const override {
      return std::vector<double>(h, mean_);
    }
    std::size_t min_history() const override { return 1; }

   private:
    double mean_ = 0.0;
  };

  FlatMean flat;
  HoltWinters hw(12);
  const BacktestResult flat_result = backtest(flat, series, 60, horizon, 6);
  const BacktestResult hw_result = backtest(hw, series, 60, horizon, 6);
  EXPECT_LT(hw_result.rmse, flat_result.rmse) << "horizon " << horizon;
}

INSTANTIATE_TEST_SUITE_P(Horizons, ModelSweep, ::testing::Values(1u, 6u, 12u, 36u));

}  // namespace
}  // namespace greenhpc::forecast
