// Unit tests for greenhpc::power — GPU power model, meter, NVML facade, DVFS.

#include <gtest/gtest.h>

#include "power/dvfs.hpp"
#include "power/gpu_power.hpp"
#include "power/nvml_sim.hpp"
#include "power/power_meter.hpp"

namespace greenhpc::power {
namespace {

using util::TimePoint;

// --- GpuPowerModel --------------------------------------------------------------

TEST(GpuPower, NoSlowdownAboveNaturalDraw) {
  const GpuPowerModel model;
  EXPECT_DOUBLE_EQ(model.throughput_factor(util::watts(250.0)), 1.0);
  EXPECT_DOUBLE_EQ(model.throughput_factor(util::watts(230.0)), 1.0);
  EXPECT_DOUBLE_EQ(model.active_power(util::watts(250.0)).watts(), 230.0);
}

TEST(GpuPower, FreyEtAlCalibration) {
  // The paper's mechanism rests on: ~10% energy saved at a 200 W cap with
  // a small (<5%) slowdown on a V100-class device.
  const GpuPowerModel model;
  const double slowdown = 1.0 - model.throughput_factor(util::watts(200.0));
  const double saving = 1.0 - model.relative_energy_per_work(util::watts(200.0));
  EXPECT_GT(slowdown, 0.0);
  EXPECT_LT(slowdown, 0.05);
  EXPECT_GT(saving, 0.07);
  EXPECT_LT(saving, 0.15);
}

TEST(GpuPower, ThroughputMonotoneInCap) {
  const GpuPowerModel model;
  double prev = 0.0;
  for (double w = 100.0; w <= 250.0; w += 5.0) {
    const double tput = model.throughput_factor(util::watts(w));
    EXPECT_GE(tput, prev) << "cap " << w;
    EXPECT_GT(tput, 0.0);
    EXPECT_LE(tput, 1.0);
    prev = tput;
  }
}

TEST(GpuPower, EnergyPerWorkNeverAboveUncappedInRange) {
  // Within the settable range the slowdown penalty never overtakes the power
  // saving for this calibration (energy/work is monotone decreasing in
  // tightening until the floor).
  const GpuPowerModel model;
  for (double w = 100.0; w <= 250.0; w += 5.0) {
    EXPECT_LE(model.relative_energy_per_work(util::watts(w)), 1.0 + 1e-12) << "cap " << w;
  }
}

TEST(GpuPower, PowerAtUtilizationInterpolates) {
  const GpuPowerModel model;
  const util::Power idle = model.power_at_utilization(util::watts(250.0), 0.0);
  const util::Power busy = model.power_at_utilization(util::watts(250.0), 1.0);
  const util::Power half = model.power_at_utilization(util::watts(250.0), 0.5);
  EXPECT_DOUBLE_EQ(idle.watts(), 50.0);
  EXPECT_DOUBLE_EQ(busy.watts(), 230.0);
  EXPECT_DOUBLE_EQ(half.watts(), 140.0);
}

TEST(GpuPower, OptimalCapRespectsSlowdownBudget) {
  const GpuPowerModel model;
  for (double budget : {0.0, 0.01, 0.03, 0.05, 0.10, 0.20}) {
    const util::Power cap = model.optimal_cap(budget);
    EXPECT_LE(1.0 - model.throughput_factor(cap), budget + 1e-9) << "budget " << budget;
  }
  // Bigger budgets permit equal-or-stricter caps.
  EXPECT_LE(model.optimal_cap(0.10).watts(), model.optimal_cap(0.03).watts());
}

TEST(GpuPower, CapOutsideRangeThrows) {
  const GpuPowerModel model;
  EXPECT_THROW((void)model.throughput_factor(util::watts(90.0)), std::invalid_argument);
  EXPECT_THROW((void)model.active_power(util::watts(260.0)), std::invalid_argument);
}

TEST(GpuPower, SpecValidation) {
  GpuSpec bad;
  bad.idle = util::watts(240.0);  // above natural draw
  EXPECT_THROW(GpuPowerModel{bad}, std::invalid_argument);
  bad = GpuSpec{};
  bad.natural_draw = util::watts(260.0);  // above TDP
  EXPECT_THROW(GpuPowerModel{bad}, std::invalid_argument);
}

// --- PowerMeter ---------------------------------------------------------------------

TEST(Meter, PiecewiseConstantIntegration) {
  PowerMeter meter;
  meter.record(TimePoint::from_seconds(0), util::hours(2), util::kilowatts(3.0));
  meter.record(TimePoint::from_seconds(7200), util::hours(1), util::kilowatts(6.0));
  EXPECT_NEAR(meter.energy().kilowatt_hours(), 12.0, 1e-9);
  EXPECT_NEAR(meter.average_power().kilowatts(), 4.0, 1e-9);
  EXPECT_NEAR(meter.peak_power().kilowatts(), 6.0, 1e-9);
}

TEST(Meter, TrapezoidalSampling) {
  PowerMeter meter;
  meter.sample(TimePoint::from_seconds(0), util::watts(100.0));
  meter.sample(TimePoint::from_seconds(3600), util::watts(300.0));
  // Trapezoid: mean 200 W over 1 h = 0.2 kWh.
  EXPECT_NEAR(meter.energy().kilowatt_hours(), 0.2, 1e-9);
}

TEST(Meter, FirstSampleOnlyEstablishesBaseline) {
  PowerMeter meter;
  meter.sample(TimePoint::from_seconds(0), util::watts(500.0));
  EXPECT_DOUBLE_EQ(meter.energy().joules(), 0.0);
}

TEST(Meter, NonMonotonicSampleThrows) {
  PowerMeter meter;
  meter.sample(TimePoint::from_seconds(100), util::watts(10.0));
  EXPECT_THROW(meter.sample(TimePoint::from_seconds(50), util::watts(10.0)),
               std::invalid_argument);
}

TEST(Meter, ResetClearsState) {
  PowerMeter meter;
  meter.record(TimePoint::from_seconds(0), util::hours(1), util::kilowatts(1.0));
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.energy().joules(), 0.0);
  EXPECT_DOUBLE_EQ(meter.average_power().watts(), 0.0);
}

// --- NvmlSim -----------------------------------------------------------------------

TEST(Nvml, DeviceLifecycle) {
  NvmlSim nvml(4);
  EXPECT_EQ(nvml.device_count(), 4u);
  std::uint32_t mw = 0;
  EXPECT_EQ(nvml.get_power_usage_mw(0, mw), NvmlStatus::kSuccess);
  EXPECT_EQ(mw, 50000u);  // idle draw
  EXPECT_EQ(nvml.get_power_usage_mw(9, mw), NvmlStatus::kInvalidDevice);
}

TEST(Nvml, PowerLimitRoundTrip) {
  NvmlSim nvml(1);
  EXPECT_EQ(nvml.set_power_limit_mw(0, 200000), NvmlStatus::kSuccess);
  std::uint32_t mw = 0;
  EXPECT_EQ(nvml.get_power_limit_mw(0, mw), NvmlStatus::kSuccess);
  EXPECT_EQ(mw, 200000u);
}

TEST(Nvml, PowerLimitConstraints) {
  NvmlSim nvml(1);
  std::uint32_t lo = 0, hi = 0;
  EXPECT_EQ(nvml.get_power_limit_constraints_mw(0, lo, hi), NvmlStatus::kSuccess);
  EXPECT_EQ(lo, 100000u);
  EXPECT_EQ(hi, 250000u);
  EXPECT_EQ(nvml.set_power_limit_mw(0, 50000), NvmlStatus::kInvalidArgument);
  EXPECT_EQ(nvml.set_power_limit_mw(0, 300000), NvmlStatus::kInvalidArgument);
}

TEST(Nvml, WorkloadDrivesPowerAndUtilization) {
  NvmlSim nvml(2);
  nvml.set_workload(0, 1.0);
  std::uint32_t mw0 = 0, mw1 = 0, pct = 0;
  (void)nvml.get_power_usage_mw(0, mw0);
  (void)nvml.get_power_usage_mw(1, mw1);
  EXPECT_EQ(mw0, 230000u);  // busy at natural draw
  EXPECT_EQ(mw1, 50000u);   // idle
  (void)nvml.get_utilization_pct(0, pct);
  EXPECT_EQ(pct, 100u);
}

TEST(Nvml, CapReducesPowerAndThroughput) {
  NvmlSim nvml(1);
  nvml.set_workload(0, 1.0);
  (void)nvml.set_power_limit_mw(0, 150000);
  std::uint32_t mw = 0;
  (void)nvml.get_power_usage_mw(0, mw);
  EXPECT_EQ(mw, 150000u);
  EXPECT_LT(nvml.throughput_factor(0), 1.0);
  EXPECT_GT(nvml.throughput_factor(0), 0.7);
}

TEST(Nvml, EnergyAccumulatesWithSteps) {
  NvmlSim nvml(1);
  nvml.set_workload(0, 1.0);
  nvml.step(util::hours(1));
  std::uint64_t mj = 0;
  (void)nvml.get_total_energy_mj(0, mj);
  // 230 W * 3600 s = 828 kJ = 8.28e8 mJ.
  EXPECT_NEAR(static_cast<double>(mj), 8.28e8, 1e3);
}

TEST(Nvml, TemperatureRelaxesTowardLoadSteadyState) {
  NvmlSim nvml(1);
  std::uint32_t cold = 0, hot = 0;
  (void)nvml.get_temperature_c(0, cold);
  nvml.set_workload(0, 1.0);
  nvml.step(util::minutes(15));  // >> thermal tau
  (void)nvml.get_temperature_c(0, hot);
  EXPECT_GT(hot, cold + 20);  // 230 W * 0.22 C/W + ambient ~ 80 C
  EXPECT_LT(hot, 95u);
}

// --- DVFS ---------------------------------------------------------------------------

TEST(Dvfs, DefaultLadderShape) {
  const auto states = default_pstates(1380.0);
  ASSERT_EQ(states.size(), 5u);
  EXPECT_DOUBLE_EQ(states[0].mhz, 1380.0);
  EXPECT_DOUBLE_EQ(states[0].throughput, 1.0);
  // Cubic power law: the 0.6 state draws 21.6% of top dynamic power.
  EXPECT_NEAR(states[4].dynamic_power, 0.216, 1e-9);
}

TEST(Dvfs, GovernorPolicies) {
  const DvfsGovernor perf(default_pstates(), GovernorPolicy::kPerformance);
  EXPECT_EQ(perf.choose(0.1, 0.9), 0u);
  const DvfsGovernor save(default_pstates(), GovernorPolicy::kPowersave);
  EXPECT_EQ(save.choose(1.0, 0.0), 4u);
  const DvfsGovernor ondemand(default_pstates(), GovernorPolicy::kOndemand);
  EXPECT_EQ(ondemand.choose(1.0, 0.0), 0u);
  EXPECT_GT(ondemand.choose(0.1, 0.0), 2u);
  const DvfsGovernor signal(default_pstates(), GovernorPolicy::kSignal);
  EXPECT_EQ(signal.choose(0.5, 0.0), 0u);
  EXPECT_EQ(signal.choose(0.5, 0.99), 4u);
}

TEST(Dvfs, LowerStatesAreMoreEfficientForComputeBoundWork) {
  const DvfsGovernor governor(default_pstates(), GovernorPolicy::kSignal);
  // With a cubic dynamic-power law and modest static power, energy per work
  // improves as the clock drops.
  double prev = governor.relative_energy_per_work(0);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (std::size_t s = 1; s < governor.states().size(); ++s) {
    const double e = governor.relative_energy_per_work(s);
    EXPECT_LT(e, prev) << "state " << s;
    prev = e;
  }
}

TEST(Dvfs, Validation) {
  EXPECT_THROW(DvfsGovernor({}, GovernorPolicy::kPerformance), std::invalid_argument);
  auto unordered = default_pstates();
  std::swap(unordered[0], unordered[3]);
  EXPECT_THROW(DvfsGovernor(unordered, GovernorPolicy::kPerformance), std::invalid_argument);
  const DvfsGovernor ok(default_pstates(), GovernorPolicy::kSignal);
  EXPECT_THROW((void)ok.choose(1.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ok.relative_energy_per_work(9), std::invalid_argument);
}

}  // namespace
}  // namespace greenhpc::power
