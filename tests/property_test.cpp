// Property-based suites: invariants that must hold across randomized seeds,
// parameter sweeps, and failure injection.

#include <gtest/gtest.h>

#include <memory>

#include "core/datacenter.hpp"
#include "sched/carbon_aware.hpp"
#include "sim/recorder.hpp"
#include "core/optimization.hpp"
#include "grid/battery.hpp"
#include "grid/carbon.hpp"
#include "grid/fuel_mix.hpp"
#include "grid/price.hpp"
#include "power/gpu_power.hpp"
#include "thermal/cooling.hpp"
#include "thermal/weather.hpp"

namespace greenhpc {
namespace {

using util::CivilDate;
using util::TimePoint;

// --- grid invariants across seeds ------------------------------------------------

class GridSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridSeeds, FuelSharesAlwaysNormalized) {
  grid::FuelMixConfig config;
  config.seed = GetParam();
  const grid::FuelMixModel model(config);
  for (int h = 0; h < 24 * 366; h += 11) {
    const grid::FuelMix mix = model.mix_at(TimePoint::from_seconds(h * 3600.0));
    double total = 0.0;
    for (double s : mix.shares()) {
      ASSERT_GE(s, 0.0);
      total += s;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
    ASSERT_LE(mix.renewable_share(), mix.low_carbon_share());
  }
}

TEST_P(GridSeeds, PricesPositiveAndBounded) {
  grid::PriceConfig config;
  config.seed = GetParam();
  const grid::FuelMixModel mix;
  const grid::LmpPriceModel model(config, &mix);
  for (int h = 0; h < 24 * 366; h += 13) {
    const double p = model.price_at(TimePoint::from_seconds(h * 3600.0)).usd_per_mwh();
    ASSERT_GE(p, config.floor_usd_per_mwh);
    ASSERT_LT(p, 1000.0);  // even spiked prices stay sane
  }
}

TEST_P(GridSeeds, CarbonIntensityBracketedByFuelExtremes) {
  grid::FuelMixConfig config;
  config.seed = GetParam();
  const grid::FuelMixModel mix(config);
  const grid::CarbonIntensityModel carbon(&mix);
  const grid::EmissionFactors factors;
  double lo = 1e9, hi = 0.0;
  for (double f : factors.kg_per_kwh) {
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  for (int h = 0; h < 24 * 200; h += 17) {
    const double kg = carbon.intensity_at(TimePoint::from_seconds(h * 3600.0)).kg_per_kwh();
    ASSERT_GE(kg, lo);
    ASSERT_LE(kg, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridSeeds, ::testing::Values(1u, 42u, 777u, 31337u));

// --- battery invariants under random action sequences --------------------------------

class BatterySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatterySeeds, SocStaysWithinBoundsAndEnergyConserved) {
  util::Rng rng(GetParam());
  grid::BatteryConfig config;
  config.capacity = util::kilowatt_hours(rng.uniform(50.0, 500.0));
  config.initial_soc_fraction = rng.uniform01();
  grid::BatteryStorage battery(config);
  const util::Energy initial = battery.state_of_charge();

  for (int step = 0; step < 2000; ++step) {
    const util::Power p = util::kilowatts(rng.uniform(0.0, 300.0));
    const util::Duration dt = util::minutes(rng.uniform(1.0, 60.0));
    if (rng.bernoulli(0.5)) {
      battery.charge(p, dt);
    } else {
      battery.discharge(p, dt);
    }
    ASSERT_GE(battery.soc_fraction(), -1e-9);
    ASSERT_LE(battery.soc_fraction(), 1.0 + 1e-9);
  }
  // Conservation: input + initial = delivered + losses + final.
  const double lhs = battery.total_grid_energy_in().kilowatt_hours() + initial.kilowatt_hours();
  const double rhs = battery.total_delivered_out().kilowatt_hours() +
                     battery.total_losses().kilowatt_hours() +
                     battery.state_of_charge().kilowatt_hours();
  ASSERT_NEAR(lhs, rhs, 1e-6);
  ASSERT_GE(battery.total_losses().kilowatt_hours(), -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatterySeeds, ::testing::Values(3u, 99u, 4242u));

// --- GPU power-cap curve properties ----------------------------------------------------

class CapSweep : public ::testing::TestWithParam<double> {};

TEST_P(CapSweep, EnergySavingDominanceAndMonotonicity) {
  const power::GpuPowerModel model;
  const util::Power cap = util::watts(GetParam());
  const double tput = model.throughput_factor(cap);
  const double energy = model.relative_energy_per_work(cap);
  // Fundamental dominance: capping never *increases* energy per work within
  // the settable range, and throughput never rises above uncapped.
  EXPECT_LE(energy, 1.0 + 1e-12);
  EXPECT_LE(tput, 1.0);
  EXPECT_GT(tput, 0.0);
  // Power draw respects the cap.
  EXPECT_LE(model.active_power(cap).watts(), cap.watts() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Caps, CapSweep,
                         ::testing::Values(100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0));

// --- cooling model properties ------------------------------------------------------------

class CoolingTemps : public ::testing::TestWithParam<double> {};

TEST_P(CoolingTemps, PueAtLeastOneAndWaterNonNegative) {
  const thermal::CoolingModel model;
  const util::Temperature t = util::celsius(GetParam());
  const util::Power it = util::kilowatts(220.0);
  EXPECT_GE(model.pue(it, t), 1.0);
  EXPECT_GE(model.water_liters_per_hour(model.load(it, t).delivered, t), 0.0);
  EXPECT_GE(model.throttle_fraction(it, t), 0.0);
  EXPECT_LE(model.throttle_fraction(it, t), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Temps, CoolingTemps,
                         ::testing::Values(-20.0, -5.0, 0.0, 10.0, 20.0, 30.0, 38.0, 45.0));

// --- datacenter twin invariants across seeds and policies -------------------------------

struct TwinCase {
  std::uint64_t seed;
  core::PolicyKind policy;
};

class TwinSweep : public ::testing::TestWithParam<TwinCase> {};

TEST_P(TwinSweep, RunInvariantsHold) {
  const TwinCase param = GetParam();
  core::DatacenterConfig config;
  config.seed = param.seed;
  core::Datacenter dc(config, core::make_scheduler(param.policy));
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  dc.run_until(TimePoint::from_seconds(5.0 * 86400.0));

  const core::RunSummary s = dc.summary();
  const auto& jobs = dc.jobs();

  // Job conservation.
  const auto running = jobs.in_state(cluster::JobState::kRunning).size();
  EXPECT_EQ(s.jobs_submitted, s.jobs_completed + s.jobs_pending + running);

  // No oversubscription at the end state.
  EXPECT_GE(dc.cluster_state().free_gpus(), 0);
  EXPECT_LE(dc.cluster_state().busy_gpus(), dc.cluster_state().total_gpus());

  // Completed jobs did all their work and carry energy.
  for (cluster::JobId id : jobs.in_state(cluster::JobState::kCompleted)) {
    const cluster::Job& job = jobs.get(id);
    ASSERT_LE(job.work_remaining(), 1e-3);
    ASSERT_GT(job.energy().joules(), 0.0);
    ASSERT_GE(job.finish_time(), job.start_time());
    ASSERT_GE(job.start_time(), job.submit_time());
  }

  // Running jobs hold exactly their requested GPUs.
  for (cluster::JobId id : jobs.in_state(cluster::JobState::kRunning)) {
    const auto alloc = dc.cluster_state().allocation_of(id);
    ASSERT_TRUE(alloc.has_value());
    ASSERT_EQ(alloc->total_gpus(), jobs.get(id).request().gpus);
  }

  // Ledger sanity.
  EXPECT_GT(s.grid_totals.energy.joules(), 0.0);
  EXPECT_GT(s.grid_totals.cost.dollars(), 0.0);
  EXPECT_GT(s.grid_totals.carbon.kilograms(), 0.0);
  EXPECT_GE(s.mean_pue, 1.0);
  EXPECT_LT(dc.accountant().totals().energy.joules(), s.grid_totals.energy.joules());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, TwinSweep,
    ::testing::Values(TwinCase{1, core::PolicyKind::kFcfs},
                      TwinCase{2, core::PolicyKind::kBackfill},
                      TwinCase{3, core::PolicyKind::kCarbonAware},
                      TwinCase{4, core::PolicyKind::kPowerAware},
                      TwinCase{99, core::PolicyKind::kBackfill}));

// --- failure injection ---------------------------------------------------------------------

TEST(FailureInjection, CoolingCollapseThrottlesButNeverDeadlocks) {
  core::DatacenterConfig config;
  config.cooling.cooling_capacity = util::kilowatts(20.0);  // drastically undersized
  config.start = util::to_timepoint(CivilDate{2021, 7, 1});
  core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  dc.run_until(util::to_timepoint(CivilDate{2021, 7, 8}));
  const core::RunSummary s = dc.summary();
  EXPECT_GT(s.throttle_hours, 24.0);   // the fault is visible
  EXPECT_GT(s.jobs_completed, 0u);     // but work still flows
}

TEST(FailureInjection, ExtremeHeatRaisesJulyPowerVsBaseline) {
  auto july_power = [](double wave_delta) {
    core::DatacenterConfig config;
    config.start = util::to_timepoint(CivilDate{2021, 7, 1});
    core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
    dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    if (wave_delta > 0.0) {
      dc.mutable_weather().add_heat_wave(
          {util::to_timepoint(CivilDate{2021, 7, 2}), util::days(6), wave_delta});
    }
    dc.run_until(util::to_timepoint(CivilDate{2021, 7, 9}));
    return dc.monthly_power().monthly().front().time_weighted_mean;
  };
  EXPECT_GT(july_power(8.0), july_power(0.0));
}

TEST(FailureInjection, PriceSpikeStormRaisesCostNotEnergy) {
  auto run = [](double spikes_per_year) {
    core::DatacenterConfig config;
    config.price.spikes_per_year = spikes_per_year;
    core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
    dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    dc.run_until(TimePoint::from_seconds(14.0 * 86400.0));
    return dc.summary().grid_totals;
  };
  const grid::EnergyLedger calm = run(0.0);
  const grid::EnergyLedger stormy = run(500.0);
  EXPECT_GT(stormy.cost.dollars(), calm.cost.dollars() * 1.02);
  EXPECT_NEAR(stormy.energy.joules(), calm.energy.joules(), 0.01 * calm.energy.joules());
}

// --- monthly aggregation exactness across random sample patterns --------------------

class AggregationSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregationSeeds, RandomSamplesSplitExactlyAcrossMonths) {
  util::Rng rng(GetParam());
  sim::MonthlyAccumulator acc;
  double expected_integral = 0.0;
  // Random-duration samples (some spanning several month boundaries and the
  // 2020 leap February) must conserve the total integral exactly.
  TimePoint t = util::to_timepoint(CivilDate{2020, 1, 15});
  for (int i = 0; i < 400; ++i) {
    const util::Duration dt = util::hours(rng.uniform(0.1, 24.0 * 40.0));
    const double value = rng.uniform(0.0, 500.0);
    acc.add_sample(t, dt, value);
    expected_integral += value * dt.seconds();
    t = t + util::Duration::from_raw(dt.seconds() * rng.uniform(0.2, 1.0));
  }
  double total = 0.0;
  for (const auto& m : acc.monthly()) total += m.integral;
  ASSERT_NEAR(total, expected_integral, expected_integral * 1e-12 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationSeeds, ::testing::Values(5u, 17u, 23u));

// --- per-job caps: ledger closure and work conservation ------------------------------

TEST(PerJobCaps, MixedCapFleetStillClosesItsLedgers) {
  core::DatacenterConfig config;
  core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  // Alternate per-job caps pseudo-randomly by job id.
  dc.set_job_cap_policy([](const cluster::Job& job) -> std::optional<util::Power> {
    switch (job.id() % 3) {
      case 0: return util::watts(150.0);
      case 1: return util::watts(200.0);
      default: return std::nullopt;
    }
  });
  dc.run_until(TimePoint::from_seconds(6.0 * 86400.0));
  const core::RunSummary s = dc.summary();
  const auto running = dc.jobs().in_state(cluster::JobState::kRunning).size();
  EXPECT_EQ(s.jobs_submitted, s.jobs_completed + s.jobs_pending + running);
  // Completed capped jobs did all their work despite slower throughput.
  for (cluster::JobId id : dc.jobs().in_state(cluster::JobState::kCompleted)) {
    ASSERT_LE(dc.jobs().get(id).work_remaining(), 1e-3);
  }
  EXPECT_LT(dc.accountant().totals().energy.joules(), s.grid_totals.energy.joules());
}

// --- starvation freedom over a long contended run -------------------------------------

TEST(Starvation, CarbonAwareNeverStrandsFlexibleJobsBeyondMaxHold) {
  core::DatacenterConfig config;
  core::Datacenter dc(config, core::make_scheduler(core::PolicyKind::kCarbonAware));
  workload::ArrivalConfig arrivals;
  arrivals.base_rate_per_hour = 10.0;
  dc.attach_arrivals(arrivals, workload::DeadlineCalendar::standard());
  dc.run_until(TimePoint::from_seconds(21.0 * 86400.0));
  // No completed flexible job may have waited beyond max_hold plus a
  // capacity allowance (when GPUs are simply full, any policy queues).
  const sched::CarbonAwareConfig defaults;
  std::size_t checked = 0;
  for (cluster::JobId id : dc.jobs().in_state(cluster::JobState::kCompleted)) {
    const cluster::Job& job = dc.jobs().get(id);
    if (!job.request().flexible) continue;
    ++checked;
    EXPECT_LE(job.queue_wait().hours(), defaults.max_hold.hours() + 24.0)
        << "job " << id << " starved";
  }
  EXPECT_GT(checked, 1000u);
}

TEST(FailureInjection, ForecastErrorDegradesButDoesNotBreakArbitrage) {
  // A battery with an adversarial (inverted) forecast must still respect its
  // physical invariants and cannot corrupt the ledger.
  core::DatacenterConfig config;
  config.battery = grid::BatteryConfig{};
  core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  auto inverted = [](TimePoint) {
    // Claims prices will always be extreme highs: the policy will discharge
    // whenever possible.
    return std::vector<double>(24, 1e6);
  };
  dc.attach_battery_policy(std::make_unique<grid::ForecastArbitragePolicy>(inverted));
  dc.run_until(TimePoint::from_seconds(7.0 * 86400.0));
  ASSERT_NE(dc.battery(), nullptr);
  EXPECT_GE(dc.battery()->soc_fraction(), -1e-9);
  EXPECT_GT(dc.summary().grid_totals.energy.joules(), 0.0);
}

}  // namespace
}  // namespace greenhpc
