// Unit tests for greenhpc::telemetry — the energy accountant and report cards.

#include <gtest/gtest.h>

#include "telemetry/accountant.hpp"
#include "telemetry/lifecycle.hpp"
#include "telemetry/report.hpp"

namespace greenhpc::telemetry {
namespace {

using cluster::Job;
using cluster::JobRequest;
using util::TimePoint;

Job make_job(cluster::JobId id, cluster::UserId user, cluster::JobClass cls,
             cluster::DomainTag domain = cluster::kNoDomain) {
  JobRequest req;
  req.user = user;
  req.job_class = cls;
  req.domain = domain;
  req.gpus = 2;
  req.work_gpu_seconds = 7200.0;
  return Job(id, req, TimePoint::from_seconds(0.0));
}

TEST(Accountant, ChargeAccumulatesPerJob) {
  EnergyAccountant acc;
  const Job job = make_job(1, 10, cluster::JobClass::kTraining);
  acc.charge(job, util::kilowatt_hours(2.0), 1.3, util::usd_per_mwh(40.0),
             util::kg_per_kwh(0.3), 5.0, 2.0);
  acc.charge(job, util::kilowatt_hours(1.0), 1.3, util::usd_per_mwh(40.0),
             util::kg_per_kwh(0.3), 2.5, 1.0);

  const JobFootprint* fp = acc.job(1);
  ASSERT_NE(fp, nullptr);
  EXPECT_NEAR(fp->it_energy.kilowatt_hours(), 3.0, 1e-9);
  EXPECT_NEAR(fp->facility_energy.kilowatt_hours(), 3.9, 1e-9);
  EXPECT_NEAR(fp->cost.dollars(), 3.9e-3 * 40.0, 1e-9);
  EXPECT_NEAR(fp->carbon.kilograms(), 3.9 * 0.3, 1e-9);
  EXPECT_NEAR(fp->water.liters(), 7.5, 1e-9);
  EXPECT_NEAR(fp->gpu_hours, 3.0, 1e-9);
}

TEST(Accountant, Eq2DecompositionSumsToTotal) {
  // sum_i e_i == E: per-user energies must add up to the cluster ledger.
  EnergyAccountant acc;
  util::Rng rng(3);
  std::vector<Job> jobs;
  for (cluster::JobId id = 1; id <= 30; ++id) {
    jobs.push_back(make_job(id, static_cast<cluster::UserId>(id % 5),
                            id % 2 ? cluster::JobClass::kTraining
                                   : cluster::JobClass::kInference));
  }
  for (const Job& job : jobs) {
    for (int slice = 0; slice < 3; ++slice) {
      acc.charge(job, util::kilowatt_hours(rng.uniform(0.1, 2.0)), 1.25,
                 util::usd_per_mwh(rng.uniform(20.0, 50.0)),
                 util::kg_per_kwh(rng.uniform(0.2, 0.35)), rng.uniform(0.0, 3.0), 0.5);
    }
  }
  double user_energy = 0.0, user_cost = 0.0, user_carbon = 0.0;
  std::size_t user_jobs = 0;
  for (const UserFootprint& u : acc.by_user()) {
    user_energy += u.facility_energy.kilowatt_hours();
    user_cost += u.cost.dollars();
    user_carbon += u.carbon.kilograms();
    user_jobs += u.jobs;
  }
  EXPECT_NEAR(user_energy, acc.totals().energy.kilowatt_hours(), 1e-9);
  EXPECT_NEAR(user_cost, acc.totals().cost.dollars(), 1e-9);
  EXPECT_NEAR(user_carbon, acc.totals().carbon.kilograms(), 1e-9);
  EXPECT_EQ(user_jobs, 30u);

  double class_energy = 0.0;
  for (const auto& [cls, energy] : acc.by_class()) class_energy += energy.kilowatt_hours();
  EXPECT_NEAR(class_energy, acc.totals().energy.kilowatt_hours(), 1e-9);
}

TEST(Accountant, UsersSortedByEnergy) {
  EnergyAccountant acc;
  const Job heavy = make_job(1, 7, cluster::JobClass::kTraining);
  const Job light = make_job(2, 8, cluster::JobClass::kDebug);
  acc.charge(heavy, util::kilowatt_hours(10.0), 1.2, util::usd_per_mwh(30.0),
             util::kg_per_kwh(0.3), 0.0, 1.0);
  acc.charge(light, util::kilowatt_hours(1.0), 1.2, util::usd_per_mwh(30.0),
             util::kg_per_kwh(0.3), 0.0, 1.0);
  const auto users = acc.by_user();
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].user, 7u);
}

TEST(Accountant, UnknownJobIsNull) {
  const EnergyAccountant acc;
  EXPECT_EQ(acc.job(42), nullptr);
}

TEST(Accountant, DomainRollupSumsToTotal) {
  EnergyAccountant acc;
  const Job nlp = make_job(1, 0, cluster::JobClass::kTraining, 0);      // NLP tag
  const Job vision = make_job(2, 1, cluster::JobClass::kTraining, 1);   // CV tag
  const Job untagged = make_job(3, 2, cluster::JobClass::kAnalysis);
  acc.charge(nlp, util::kilowatt_hours(4.0), 1.25, util::usd_per_mwh(30.0),
             util::kg_per_kwh(0.3), 0.0, 1.0);
  acc.charge(vision, util::kilowatt_hours(2.0), 1.25, util::usd_per_mwh(30.0),
             util::kg_per_kwh(0.3), 0.0, 1.0);
  acc.charge(untagged, util::kilowatt_hours(1.0), 1.25, util::usd_per_mwh(30.0),
             util::kg_per_kwh(0.3), 0.0, 1.0);
  const auto by_domain = acc.by_domain();
  EXPECT_NEAR(by_domain.at(0).kilowatt_hours(), 5.0, 1e-9);
  EXPECT_NEAR(by_domain.at(1).kilowatt_hours(), 2.5, 1e-9);
  EXPECT_NEAR(by_domain.at(cluster::kNoDomain).kilowatt_hours(), 1.25, 1e-9);
  double total = 0.0;
  for (const auto& [tag, energy] : by_domain) total += energy.kilowatt_hours();
  EXPECT_NEAR(total, acc.totals().energy.kilowatt_hours(), 1e-9);
}

TEST(Accountant, Validation) {
  EnergyAccountant acc;
  const Job job = make_job(1, 0, cluster::JobClass::kDebug);
  EXPECT_THROW(acc.charge(job, util::kilowatt_hours(-1.0), 1.2, util::usd_per_mwh(30.0),
                          util::kg_per_kwh(0.3), 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(acc.charge(job, util::kilowatt_hours(1.0), 0.9, util::usd_per_mwh(30.0),
                          util::kg_per_kwh(0.3), 0.0, 1.0),
               std::invalid_argument);
}

// --- equivalents ------------------------------------------------------------------

TEST(Equivalents, ConversionFactors) {
  const CarbonEquivalents eq = equivalents(util::kg_co2(40.0), util::kilowatt_hours(29.0));
  EXPECT_NEAR(eq.car_miles, 100.0, 1e-9);
  EXPECT_NEAR(eq.household_days_energy, 1.0, 1e-9);
  // The Strubell benchmark: 57,150 kg is one car lifetime.
  const CarbonEquivalents big = equivalents(util::kg_co2(57150.0), util::Energy{});
  EXPECT_NEAR(big.car_lifetimes, 1.0, 1e-9);
}

// --- report card -------------------------------------------------------------------

class ReportFixture : public ::testing::Test {
 protected:
  ReportFixture() {
    const Job a = make_job(1, 3, cluster::JobClass::kTraining);
    const Job b = make_job(2, 4, cluster::JobClass::kInference);
    acc_.charge(a, util::kilowatt_hours(5.0), 1.3, util::usd_per_mwh(35.0),
                util::kg_per_kwh(0.28), 4.0, 10.0);
    acc_.charge(b, util::kilowatt_hours(2.0), 1.3, util::usd_per_mwh(35.0),
                util::kg_per_kwh(0.28), 1.0, 2.0);
  }
  EnergyAccountant acc_;
};

TEST_F(ReportFixture, JobReportContainsKeyRows) {
  const ReportCard card(&acc_);
  const std::string md = card.job_report(1);
  EXPECT_NE(md.find("## Energy report — job 1"), std::string::npos);
  EXPECT_NE(md.find("training"), std::string::npos);
  EXPECT_NE(md.find("facility energy"), std::string::npos);
  EXPECT_NE(md.find("car miles"), std::string::npos);
}

TEST_F(ReportFixture, JobReportForUnknownJobThrows) {
  const ReportCard card(&acc_);
  EXPECT_THROW((void)card.job_report(99), std::invalid_argument);
}

TEST_F(ReportFixture, LeaderboardOrdersByEnergy) {
  const ReportCard card(&acc_);
  const std::string md = card.user_leaderboard(10);
  // User 3 (5 kWh) must appear before user 4 (2 kWh).
  EXPECT_LT(md.find("| 3 |"), md.find("| 4 |"));
}

TEST_F(ReportFixture, ClusterSummaryHasClassBreakdown) {
  const ReportCard card(&acc_);
  const std::string md = card.cluster_summary();
  EXPECT_NE(md.find("training"), std::string::npos);
  EXPECT_NE(md.find("inference"), std::string::npos);
  EXPECT_NE(md.find("car lifetimes"), std::string::npos);
}

TEST_F(ReportFixture, CsvHasHeaderAndRows) {
  const ReportCard card(&acc_);
  const std::string csv = card.jobs_csv();
  EXPECT_NE(csv.find("job,user,class"), std::string::npos);
  // Header + 2 rows = 3 newlines at least.
  EXPECT_GE(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(ReportCardTest, NullAccountantThrows) {
  EXPECT_THROW(ReportCard(nullptr), std::invalid_argument);
}

// --- lifecycle ledger ----------------------------------------------------------------

TEST(Lifecycle, PhasesAccumulateIndependently) {
  ModelLifecycle model("demo-1.3B");
  model.book(LifecyclePhase::kDevelopment, util::kilowatt_hours(100.0), util::usd(3.0),
             util::kg_co2(28.0), 250.0);
  model.book(LifecyclePhase::kDevelopment, util::kilowatt_hours(50.0), util::usd(1.5),
             util::kg_co2(14.0), 125.0);
  model.book(LifecyclePhase::kTraining, util::kilowatt_hours(30.0), util::usd(1.0),
             util::kg_co2(8.4), 75.0);
  EXPECT_NEAR(model.phase(LifecyclePhase::kDevelopment).energy.kilowatt_hours(), 150.0, 1e-9);
  EXPECT_NEAR(model.phase(LifecyclePhase::kTraining).gpu_hours, 75.0, 1e-9);
  EXPECT_NEAR(model.total().energy.kilowatt_hours(), 180.0, 1e-9);
}

TEST(Lifecycle, SharesSumToOneAndInferenceShareMatchesPaperScenario) {
  ModelLifecycle model("prod");
  model.book(LifecyclePhase::kDevelopment, util::kilowatt_hours(10.0), util::Money{},
             util::MassCo2{}, 0.0);
  model.book(LifecyclePhase::kTraining, util::kilowatt_hours(5.0), util::Money{},
             util::MassCo2{}, 0.0);
  model.book(LifecyclePhase::kServing, util::kilowatt_hours(85.0), util::Money{},
             util::MassCo2{}, 0.0);
  const auto shares = model.energy_shares();
  double total = 0.0;
  for (double s : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // "put inference at ... 80%-90% of energy costs": the ledger reports it.
  EXPECT_NEAR(model.inference_share(), 0.85, 1e-12);
}

TEST(Lifecycle, EmptyLedgerHasZeroShares) {
  const ModelLifecycle model("empty");
  const auto shares = model.energy_shares();
  for (double s : shares) EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_DOUBLE_EQ(model.inference_share(), 0.0);
}

TEST(Lifecycle, ReportContainsAllPhases) {
  ModelLifecycle model("report-model");
  model.book(LifecyclePhase::kServing, util::kilowatt_hours(1.0), util::usd(0.03),
             util::kg_co2(0.3), 4.0);
  const std::string md = model.report();
  EXPECT_NE(md.find("development"), std::string::npos);
  EXPECT_NE(md.find("training"), std::string::npos);
  EXPECT_NE(md.find("serving"), std::string::npos);
  EXPECT_NE(md.find("report-model"), std::string::npos);
  EXPECT_NE(md.find("**total**"), std::string::npos);
}

TEST(Lifecycle, Validation) {
  EXPECT_THROW(ModelLifecycle(""), std::invalid_argument);
  ModelLifecycle model("x");
  EXPECT_THROW(model.book(LifecyclePhase::kTraining, util::kilowatt_hours(-1.0), util::Money{},
                          util::MassCo2{}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace greenhpc::telemetry
