// Unit tests for greenhpc::core — datacenter facade, Eq. 1/Eq. 2 optimizers,
// campaign planner, stress tester, Green AI challenge.

#include <gtest/gtest.h>

#include <memory>

#include "core/campaign.hpp"
#include "core/challenge.hpp"
#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "core/stress.hpp"

namespace greenhpc::core {
namespace {

using util::CivilDate;
using util::MonthKey;
using util::TimePoint;

// --- Datacenter -----------------------------------------------------------------

TEST(DatacenterTest, ExternalJobRunsToCompletion) {
  DatacenterConfig config;
  Datacenter dc(config, std::make_unique<sched::FcfsScheduler>());
  cluster::JobRequest req;
  req.gpus = 4;
  req.work_gpu_seconds = 4.0 * 2.0 * 3600.0;  // 2 h on 4 GPUs
  const cluster::JobId id = dc.submit(req);
  dc.run_until(TimePoint::from_seconds(86400.0));
  const cluster::Job& job = dc.jobs().get(id);
  EXPECT_EQ(job.state(), cluster::JobState::kCompleted);
  // Wall clock within a step of the ideal 2 h.
  EXPECT_NEAR((job.finish_time() - job.start_time()).hours(), 2.0, 0.3);
  EXPECT_GT(job.energy().kilowatt_hours(), 0.5);
}

TEST(DatacenterTest, SummaryAccountsAllJobs) {
  auto dc = make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(), 3);
  dc->run_until(TimePoint::from_seconds(5.0 * 86400.0));
  const RunSummary s = dc->summary();
  const auto running = dc->jobs().in_state(cluster::JobState::kRunning).size();
  EXPECT_EQ(s.jobs_submitted, s.jobs_completed + s.jobs_pending + running);
  EXPECT_GT(s.jobs_completed, 100u);
  EXPECT_GT(s.mean_utilization, 0.2);
  EXPECT_GE(s.mean_pue, 1.0);
  EXPECT_GT(s.grid_totals.energy.megawatt_hours(), 1.0);
}

TEST(DatacenterTest, DeterministicForSeed) {
  auto a = make_reference_datacenter(std::make_unique<sched::FcfsScheduler>(), 77);
  auto b = make_reference_datacenter(std::make_unique<sched::FcfsScheduler>(), 77);
  a->run_until(TimePoint::from_seconds(3.0 * 86400.0));
  b->run_until(TimePoint::from_seconds(3.0 * 86400.0));
  EXPECT_EQ(a->summary().jobs_submitted, b->summary().jobs_submitted);
  EXPECT_DOUBLE_EQ(a->summary().grid_totals.energy.joules(),
                   b->summary().grid_totals.energy.joules());
}

TEST(DatacenterTest, SeedsChangeTheRealization) {
  auto a = make_reference_datacenter(std::make_unique<sched::FcfsScheduler>(), 1);
  auto b = make_reference_datacenter(std::make_unique<sched::FcfsScheduler>(), 2);
  a->run_until(TimePoint::from_seconds(3.0 * 86400.0));
  b->run_until(TimePoint::from_seconds(3.0 * 86400.0));
  EXPECT_NE(a->summary().grid_totals.energy.joules(), b->summary().grid_totals.energy.joules());
}

TEST(DatacenterTest, AccountantEnergyBoundedByMeter) {
  // Jobs are charged GPU energy x PUE; the grid meter additionally covers
  // idle nodes and fixed infrastructure, so job totals must be a strict
  // lower bound on metered facility energy.
  auto dc = make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(), 5);
  dc->run_until(TimePoint::from_seconds(4.0 * 86400.0));
  EXPECT_LT(dc->accountant().totals().energy.joules(),
            dc->grid_meter().totals().energy.joules());
  EXPECT_GT(dc->accountant().totals().energy.joules(), 0.0);
}

TEST(DatacenterTest, BatteryPolicyRequiresBattery) {
  DatacenterConfig config;  // no battery configured
  Datacenter dc(config, std::make_unique<sched::FcfsScheduler>());
  EXPECT_THROW(dc.attach_battery_policy(std::make_unique<grid::ThresholdArbitragePolicy>()),
               std::invalid_argument);
}

TEST(DatacenterTest, BatteryCyclesWhenAttached) {
  DatacenterConfig config;
  config.battery = grid::BatteryConfig{};
  Datacenter dc(config, std::make_unique<sched::FcfsScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  dc.attach_battery_policy(std::make_unique<grid::ThresholdArbitragePolicy>());
  dc.run_until(TimePoint::from_seconds(10.0 * 86400.0));
  ASSERT_NE(dc.battery(), nullptr);
  EXPECT_GT(dc.battery()->total_grid_energy_in().kilowatt_hours(), 1.0);
}

TEST(DatacenterTest, JobCapPolicyReducesEnergyAtSameWork) {
  auto run = [](bool tailored) {
    core::DatacenterConfig config;
    core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
    dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    if (tailored) {
      dc.set_job_cap_policy([](const cluster::Job& job) -> std::optional<util::Power> {
        // Flexible jobs opt into a strict cap; urgent jobs stay uncapped.
        if (job.request().flexible) return util::watts(160.0);
        return std::nullopt;
      });
    }
    dc.run_until(TimePoint::from_seconds(7.0 * 86400.0));
    return dc.summary();
  };
  const core::RunSummary plain = run(false);
  const core::RunSummary capped = run(true);
  EXPECT_LT(capped.grid_totals.energy.joules(), plain.grid_totals.energy.joules());
  EXPECT_GT(capped.completed_gpu_hours, 0.95 * plain.completed_gpu_hours);
}

TEST(DatacenterTest, UserAttributedArrivalsPopulateLedgers) {
  util::Rng rng(8);
  workload::PopulationConfig pop_config;
  pop_config.user_count = 40;
  const workload::UserPopulation population =
      workload::UserPopulation::generate(pop_config, rng);
  core::DatacenterConfig config;
  core::Datacenter dc(config, std::make_unique<sched::FcfsScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard(),
                     &population);
  dc.run_until(TimePoint::from_seconds(3.0 * 86400.0));
  const auto users = dc.accountant().by_user();
  EXPECT_GT(users.size(), 10u);  // many distinct users charged
  for (const telemetry::UserFootprint& u : users)
    EXPECT_LT(u.user, pop_config.user_count);
}

TEST(DatacenterTest, StartOffsetRunsOnLaterCalendar) {
  DatacenterConfig config;
  config.start = util::to_timepoint(CivilDate{2021, 6, 24});
  Datacenter dc(config, std::make_unique<sched::FcfsScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  dc.run_until(util::to_timepoint(CivilDate{2021, 7, 2}));
  const auto months = dc.monthly_power().months();
  ASSERT_FALSE(months.empty());
  EXPECT_EQ(months.front(), (MonthKey{2021, 6}));
  EXPECT_EQ(months.back(), (MonthKey{2021, 7}));
}

// --- Eq. 1 optimizers ---------------------------------------------------------------

TEST(Optimization, GridSearchFindsFeasibleMinimum) {
  // Synthetic objective: energy = cap; activity = cap (monotone), alpha=170.
  auto evaluate = [](const ControlVector& cv) {
    Evaluation e;
    e.controls = cv;
    e.energy = cv.power_cap.watts();
    e.activity = cv.power_cap.watts();
    return e;
  };
  std::vector<ControlVector> candidates;
  for (double w : {150.0, 175.0, 200.0, 225.0, 250.0}) {
    ControlVector cv;
    cv.power_cap = util::watts(w);
    candidates.push_back(cv);
  }
  const OptimizationResult result = grid_search(evaluate, candidates, 170.0, false);
  EXPECT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best.controls.power_cap.watts(), 175.0);
  EXPECT_EQ(result.all.size(), 5u);
}

TEST(Optimization, GridSearchFallsBackToLeastViolating) {
  auto evaluate = [](const ControlVector& cv) {
    Evaluation e;
    e.controls = cv;
    e.energy = cv.power_cap.watts();
    e.activity = cv.power_cap.watts();
    return e;
  };
  std::vector<ControlVector> candidates;
  for (double w : {150.0, 200.0}) {
    ControlVector cv;
    cv.power_cap = util::watts(w);
    candidates.push_back(cv);
  }
  const OptimizationResult result = grid_search(evaluate, candidates, 1000.0, false);
  EXPECT_FALSE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best.controls.power_cap.watts(), 200.0);  // closest to alpha
}

TEST(Optimization, ParallelAndSerialAgree) {
  auto evaluate = [](const ControlVector& cv) {
    Evaluation e;
    e.controls = cv;
    e.energy = cv.power_cap.watts() + static_cast<double>(cv.enabled_nodes);
    e.activity = 500.0;
    return e;
  };
  const auto lattice = default_lattice();
  const OptimizationResult serial = grid_search(evaluate, lattice, 0.0, false);
  const OptimizationResult parallel = grid_search(evaluate, lattice, 0.0, true);
  EXPECT_DOUBLE_EQ(serial.best.energy, parallel.best.energy);
}

TEST(Optimization, RefineCapDescendsWhileFeasible) {
  // Energy strictly decreasing in cap, activity fails below 180 W.
  auto evaluate = [](const ControlVector& cv) {
    Evaluation e;
    e.controls = cv;
    e.energy = cv.power_cap.watts();
    e.activity = cv.power_cap.watts() >= 180.0 ? 100.0 : 0.0;
    return e;
  };
  ControlVector start;
  start.power_cap = util::watts(250.0);
  const OptimizationResult result = refine_cap(evaluate, start, 50.0, util::watts(10.0), 20);
  EXPECT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best.controls.power_cap.watts(), 180.0);
}

TEST(Optimization, DefaultLatticeCoversAllPolicies) {
  const auto lattice = default_lattice();
  EXPECT_EQ(lattice.size(), 4u * 5u * 3u);
  bool saw_carbon = false;
  for (const ControlVector& cv : lattice)
    if (cv.policy == PolicyKind::kCarbonAware) saw_carbon = true;
  EXPECT_TRUE(saw_carbon);
  EXPECT_NE(lattice.front().label().find("fcfs"), std::string::npos);
}

TEST(Optimization, MakeSchedulerCoversAllKinds) {
  for (PolicyKind p : {PolicyKind::kFcfs, PolicyKind::kBackfill, PolicyKind::kCarbonAware,
                       PolicyKind::kPowerAware}) {
    const auto sched = make_scheduler(p);
    ASSERT_NE(sched, nullptr);
    EXPECT_STREQ(sched->name(), policy_name(p)) << policy_name(p);
  }
}

// --- Eq. 2 per-user caps ----------------------------------------------------------------

TEST(Optimization, PerUserCapsRespectActivityFloors) {
  const power::GpuPowerModel model;
  std::vector<telemetry::UserFootprint> users(3);
  users[0].user = 0;
  users[0].gpu_hours = 1000.0;
  users[1].user = 1;
  users[1].gpu_hours = 100.0;
  users[2].user = 2;
  users[2].gpu_hours = 10.0;

  // Floor at 95% of current activity: every user gets a cap that keeps
  // throughput-scaled activity above it.
  const auto caps = per_user_caps(users, model, [](const telemetry::UserFootprint& u) {
    return u.gpu_hours * 0.95;
  });
  ASSERT_EQ(caps.size(), 3u);
  for (const UserCapAssignment& a : caps) {
    EXPECT_GE(a.predicted_activity,
              users[a.user].gpu_hours * 0.95 - 1e-9);
    EXPECT_LE(a.cap.watts(), 250.0);
    EXPECT_LE(a.predicted_energy_ratio, 1.0);
  }
  // A 5% slowdown budget admits a real cap (< TDP) with real savings.
  EXPECT_LT(caps[0].cap.watts(), 250.0);
  EXPECT_LT(caps[0].predicted_energy_ratio, 0.95);
}

TEST(Optimization, TighterFloorMeansLooserCap) {
  const power::GpuPowerModel model;
  std::vector<telemetry::UserFootprint> users(1);
  users[0].gpu_hours = 100.0;
  const auto strict = per_user_caps(users, model, [](const auto& u) { return u.gpu_hours * 0.999; });
  const auto loose = per_user_caps(users, model, [](const auto& u) { return u.gpu_hours * 0.80; });
  EXPECT_GE(strict[0].cap.watts(), loose[0].cap.watts());
}

// --- campaign planner ---------------------------------------------------------------------

class CampaignFixture : public ::testing::Test {
 protected:
  CampaignFixture() : carbon_(&mix_), price_(grid::PriceConfig{}, &mix_), planner_(&carbon_, &price_) {}
  grid::FuelMixModel mix_;
  grid::CarbonIntensityModel carbon_;
  grid::LmpPriceModel price_;
  CampaignPlanner planner_;
};

TEST_F(CampaignFixture, PlansConserveTotalCompute) {
  CampaignSpec spec;
  for (const CampaignPlan& plan :
       {planner_.plan_uniform(spec), planner_.plan_green_oracle(spec),
        planner_.plan_green_forecast(spec)}) {
    double total = 0.0;
    for (const CampaignMonth& m : plan.months) {
      total += m.planned_gpu_hours;
      EXPECT_LE(m.planned_gpu_hours, spec.monthly_capacity_gpu_hours + 1e-6);
    }
    EXPECT_NEAR(total, spec.total_gpu_hours, 1e-6);
  }
}

TEST_F(CampaignFixture, OracleBeatsUniformOnCarbon) {
  CampaignSpec spec;
  const CampaignPlan uniform = planner_.plan_uniform(spec);
  const CampaignPlan oracle = planner_.plan_green_oracle(spec);
  EXPECT_LT(oracle.carbon.kilograms(), uniform.carbon.kilograms());
}

TEST_F(CampaignFixture, ForecastRetainsMostOfOracleSaving) {
  CampaignSpec spec;
  const CampaignPlan uniform = planner_.plan_uniform(spec);
  const CampaignPlan oracle = planner_.plan_green_oracle(spec);
  const CampaignPlan forecast = planner_.plan_green_forecast(spec);
  const double oracle_saving = uniform.carbon.kilograms() - oracle.carbon.kilograms();
  const double forecast_saving = uniform.carbon.kilograms() - forecast.carbon.kilograms();
  EXPECT_GT(forecast_saving, 0.5 * oracle_saving);
}

TEST_F(CampaignFixture, InfeasibleCampaignThrows) {
  CampaignSpec spec;
  spec.total_gpu_hours = 1e9;  // exceeds capacity * months
  EXPECT_THROW((void)planner_.plan_uniform(spec), std::invalid_argument);
}

// --- stress tester ----------------------------------------------------------------------

TEST(Stress, HeatWaveCausesThrottlingWithoutInvestment) {
  StressConfig config;
  config.replicas = 1;
  const StressTester tester(config);
  const StressOutcome raw = tester.run(ScenarioKind::kExtremeHeatWave, 0.0);
  const StressOutcome invested = tester.run(ScenarioKind::kExtremeHeatWave, 1.0);
  EXPECT_GT(raw.throttle_hours, 0.0);
  EXPECT_LT(invested.throttle_hours, raw.throttle_hours);
}

TEST(Stress, BaselineScenarioIsCalm) {
  StressConfig config;
  config.replicas = 1;
  const StressTester tester(config);
  const StressOutcome calm = tester.run(ScenarioKind::kBaseline, 0.0);
  EXPECT_NEAR(calm.extra_cost_usd, 0.0, 1e-6);  // baseline vs baseline
  EXPECT_NEAR(calm.unserved_gpu_hours, 0.0, 1e-6);
}

TEST(Stress, PriceSpikeCostsMoneyNotThrottle) {
  StressConfig config;
  config.replicas = 1;
  const StressTester tester(config);
  const StressOutcome spike = tester.run(ScenarioKind::kPriceSpike, 1.0);
  EXPECT_GT(spike.extra_cost_usd, 100.0);
  EXPECT_NEAR(spike.throttle_hours, 0.0, 1.0);
}

TEST(Stress, ScenarioNamesAreStable) {
  EXPECT_STREQ(scenario_name(ScenarioKind::kHeatWave), "heat_wave");
  EXPECT_STREQ(scenario_name(ScenarioKind::kRenewableDrought), "renewable_drought");
}

// --- challenge ----------------------------------------------------------------------------

TEST(Challenge, BudgetEnforcement) {
  const GreenAiChallenge challenge({util::kilowatt_hours(100.0), 400.0});
  const ScoredSubmission ok =
      challenge.score({"a", 0.8, util::kilowatt_hours(90.0), 300.0});
  EXPECT_TRUE(ok.within_budget);
  EXPECT_DOUBLE_EQ(ok.score, 0.8);
  const ScoredSubmission energy_dq =
      challenge.score({"b", 0.9, util::kilowatt_hours(150.0), 300.0});
  EXPECT_FALSE(energy_dq.within_budget);
  EXPECT_DOUBLE_EQ(energy_dq.score, 0.0);
  EXPECT_EQ(energy_dq.disqualification, "energy budget exceeded");
  const ScoredSubmission compute_dq =
      challenge.score({"c", 0.9, util::kilowatt_hours(50.0), 500.0});
  EXPECT_EQ(compute_dq.disqualification, "compute budget exceeded");
}

TEST(Challenge, LeaderboardOrdering) {
  const GreenAiChallenge challenge({util::kilowatt_hours(100.0), 400.0});
  const std::vector<Submission> entries = {
      {"over", 0.95, util::kilowatt_hours(200.0), 100.0},
      {"good", 0.85, util::kilowatt_hours(80.0), 200.0},
      {"tied-greener", 0.80, util::kilowatt_hours(40.0), 100.0},
      {"tied-browner", 0.80, util::kilowatt_hours(90.0), 100.0},
  };
  const auto board = challenge.leaderboard(entries);
  ASSERT_EQ(board.size(), 4u);
  EXPECT_EQ(board[0].submission.team, "good");
  EXPECT_EQ(board[1].submission.team, "tied-greener");  // greener wins the tie
  EXPECT_EQ(board[2].submission.team, "tied-browner");
  EXPECT_EQ(board[3].submission.team, "over");  // disqualified sinks
}

TEST(Challenge, EfficiencyLeaderboardExcludesDisqualified) {
  const GreenAiChallenge challenge({util::kilowatt_hours(100.0), 400.0});
  const std::vector<Submission> entries = {
      {"over", 0.95, util::kilowatt_hours(200.0), 100.0},
      {"lean", 0.70, util::kilowatt_hours(10.0), 50.0},
      {"heavy", 0.85, util::kilowatt_hours(95.0), 200.0},
  };
  const auto board = challenge.efficiency_leaderboard(entries);
  ASSERT_EQ(board.size(), 2u);
  EXPECT_EQ(board[0].submission.team, "lean");  // 0.07/kWh beats 0.0089/kWh
}

TEST(Challenge, Validation) {
  EXPECT_THROW(GreenAiChallenge({util::kilowatt_hours(0.0), 10.0}), std::invalid_argument);
  const GreenAiChallenge challenge({util::kilowatt_hours(10.0), 10.0});
  EXPECT_THROW((void)challenge.score({"x", -0.1, util::kilowatt_hours(1.0), 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace greenhpc::core
