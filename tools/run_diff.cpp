// run_diff — cross-run regression sentry.
//
// Loads two run artifacts (experiment JSON, attribution JSONL, metrics
// JSONL, or a flat BENCH_PERF.json), matches series by name, and renders
// per-metric deltas with a PASS/REGRESSION verdict. Where both sides carry
// per-replica series (experiment "values" arrays), replicas are seed-paired
// and the delta ships with a 95% CI on the paired mean — a drift smaller
// than its own CI is noise, not regression.
//
// CI runs this as the bench-smoke sentry: the flagship scenario's fresh
// attribution export is compared against the committed golden with a small
// relative tolerance (cross-machine libm ULP headroom); any real change to
// the simulated numbers must be acknowledged by regenerating the golden.
//
// usage:
//   run_diff BASE CANDIDATE [options]     compare two artifacts
//   run_diff --self-test                  verify the sentry catches a
//                                         deliberately perturbed fixture
// options:
//   --rel-tol X        global relative tolerance (default 1e-6)
//   --tol METRIC=X     per-metric tolerance override (repeatable)
//   --json FILE        also write the machine-readable report
//   --allow-missing    series present on only one side: note, don't fail
//
// exit status: 0 = pass, 1 = regression, 2 = usage/IO error.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/run_compare.hpp"

namespace {

using greenhpc::obs::ArtifactData;
using greenhpc::obs::DiffOptions;
using greenhpc::obs::DiffReport;

void print_usage() {
  std::cout << "run_diff — cross-run regression sentry\n\n"
               "usage:\n"
               "  run_diff BASE CANDIDATE [--rel-tol X] [--tol METRIC=X]...\n"
               "           [--json FILE] [--allow-missing]\n"
               "  run_diff --self-test\n"
               "  run_diff --help\n";
}

ArtifactData load_path(const std::string& path, int& rc) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    rc = 2;
    return {};
  }
  return greenhpc::obs::load_artifact(in);
}

ArtifactData load_text(const std::string& text) {
  std::istringstream in(text);
  return greenhpc::obs::load_artifact(in);
}

// --- self-test ---------------------------------------------------------------

/// A small experiment artifact with seed-paired replica values.
const char* kBaseFixture =
    R"({"scenario":"selftest","replicas":4,"metrics":[)"
    R"({"name":"co2_kg","replicas":4,"mean":25,"stddev":12.9,"ci95_half":20.5,"min":10,"max":40,"values":[10,20,30,40]},)"
    R"({"name":"energy_mwh","replicas":4,"mean":100,"stddev":0,"ci95_half":0,"min":100,"max":100,"values":[100,100,100,100]}]})";

/// Identical numbers: the sentry must pass.
const char* kCleanFixture = kBaseFixture;

/// energy_mwh shifted 1% in every replica: the sentry must fail.
const char* kPerturbedFixture =
    R"({"scenario":"selftest","replicas":4,"metrics":[)"
    R"({"name":"co2_kg","replicas":4,"mean":25,"stddev":12.9,"ci95_half":20.5,"min":10,"max":40,"values":[10,20,30,40]},)"
    R"({"name":"energy_mwh","replicas":4,"mean":101,"stddev":0,"ci95_half":0,"min":101,"max":101,"values":[101,101,101,101]}]})";

/// co2_kg jittered per replica with a mean drift far inside the paired CI:
/// rel-tol alone would flag it, the CI must absolve it.
const char* kNoisyFixture =
    R"({"scenario":"selftest","replicas":4,"metrics":[)"
    R"({"name":"co2_kg","replicas":4,"mean":25.1,"stddev":12.8,"ci95_half":20.4,"min":10.5,"max":39.9,"values":[10.5,19.6,30.4,39.9]},)"
    R"({"name":"energy_mwh","replicas":4,"mean":100,"stddev":0,"ci95_half":0,"min":100,"max":100,"values":[100,100,100,100]}]})";

/// energy_mwh missing entirely: schema drift must fail.
const char* kMissingFixture =
    R"({"scenario":"selftest","replicas":4,"metrics":[)"
    R"({"name":"co2_kg","replicas":4,"mean":25,"stddev":12.9,"ci95_half":20.5,"min":10,"max":40,"values":[10,20,30,40]}]})";

int self_test() {
  const ArtifactData base = load_text(kBaseFixture);
  DiffOptions tight;
  tight.rel_tol = 1e-3;
  int failures = 0;
  const auto expect = [&failures](const char* what, bool got, bool want) {
    if (got != want) {
      std::cerr << "self-test FAILED: " << what << " (regression=" << got << ", expected "
                << want << ")\n";
      ++failures;
    } else {
      std::cout << "self-test ok: " << what << "\n";
    }
  };

  expect("identical artifacts pass",
         diff_artifacts(base, load_text(kCleanFixture), tight).regression(), false);
  expect("perturbed fixture is caught",
         diff_artifacts(base, load_text(kPerturbedFixture), tight).regression(), true);
  expect("paired CI absolves per-replica noise",
         diff_artifacts(base, load_text(kNoisyFixture), tight).regression(), false);
  expect("missing series is caught",
         diff_artifacts(base, load_text(kMissingFixture), tight).regression(), true);

  DiffOptions lax = tight;
  lax.rel_tol = 0.1;
  expect("loose tolerance forgives the perturbation",
         diff_artifacts(base, load_text(kPerturbedFixture), lax).regression(), false);

  DiffOptions per_metric = tight;
  per_metric.per_metric["energy_mwh"] = 0.1;
  expect("per-metric override forgives one series",
         diff_artifacts(base, load_text(kPerturbedFixture), per_metric).regression(), false);

  if (failures == 0) {
    std::cout << "self-test passed (6 checks)\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h") {
    print_usage();
    return argc < 2 ? 2 : 0;
  }
  if (std::string(argv[1]) == "--self-test") return self_test();
  if (argc < 3) {
    std::cerr << "error: need BASE and CANDIDATE artifacts (see --help)\n";
    return 2;
  }

  DiffOptions options;
  std::string json_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs an argument\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--rel-tol") {
      const char* v = next();
      if (v == nullptr) return 2;
      options.rel_tol = std::strtod(v, nullptr);
    } else if (arg == "--tol") {
      const char* v = next();
      if (v == nullptr) return 2;
      const std::string spec = v;
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "error: --tol expects METRIC=VALUE, got '" << spec << "'\n";
        return 2;
      }
      options.per_metric[spec.substr(0, eq)] = std::strtod(spec.c_str() + eq + 1, nullptr);
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return 2;
      json_path = v;
    } else if (arg == "--allow-missing") {
      options.fail_on_missing = false;
    } else {
      std::cerr << "error: unknown option '" << arg << "' (see --help)\n";
      return 2;
    }
  }

  int rc = 0;
  const ArtifactData base = load_path(argv[1], rc);
  if (rc != 0) return rc;
  const ArtifactData cand = load_path(argv[2], rc);
  if (rc != 0) return rc;

  const DiffReport report = greenhpc::obs::diff_artifacts(base, cand, options);
  std::cout << greenhpc::obs::render_diff_markdown(report);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    out << greenhpc::obs::render_diff_json(report) << "\n";
  }
  return report.regression() ? 1 : 0;
}
