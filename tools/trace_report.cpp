// trace_report — summarizer/validator for the flight recorder's outputs.
//
// Modes:
//   trace_report TRACE.json             parse + human-readable summary
//   trace_report --validate TRACE.json  parse only; exit 1 on schema errors
//   trace_report --metrics FILE.jsonl   validate a metrics JSONL export;
//                                       exit 1 on schema errors
//   trace_report --attrib FILE.json     validate an attribution export:
//                                       schema + conservation re-check
//
// The summary groups complete spans by name (the step-phase profile),
// matched async spans by category (job.queue / job.run / migration pipes),
// and counts every event kind — enough to sanity-check a run from a
// terminal without loading Perfetto. Validation modes also check the
// embedded provenance manifest when one is present (schema version must
// match this build's obs::kSchemaVersion); a manifest-less artifact only
// warns, so pre-provenance files stay readable. CI's bench-smoke job runs
// the --validate, --metrics, and --attrib modes against the flagship
// scenario's exports.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/trace_report.hpp"

namespace {

void print_usage() {
  std::cout << "trace_report — flight-recorder trace/metrics summarizer\n\n"
               "usage:\n"
               "  trace_report TRACE.json             summarize a trace file\n"
               "  trace_report --validate TRACE.json  schema check only (exit 1 on errors)\n"
               "  trace_report --metrics FILE         validate a metrics JSONL export\n"
               "  trace_report --attrib FILE          validate an attribution export\n"
               "  trace_report --help                 this text\n";
}

int open_or_fail(const std::string& path, std::ifstream& in) {
  in.open(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 2;
  }
  return 0;
}

void print_warnings(const std::vector<std::string>& warnings, const char* label) {
  for (const std::string& w : warnings) std::cerr << label << " warning: " << w << "\n";
}

/// Validates the manifest embedded in raw artifact text: schema errors into
/// `errors`, absence into `warnings`.
void check_embedded_manifest(const std::string& text, std::vector<std::string>& errors,
                             std::vector<std::string>& warnings) {
  const std::string manifest = greenhpc::obs::extract_manifest_text(text);
  if (manifest.empty()) {
    warnings.push_back("no manifest header (pre-provenance artifact?)");
    return;
  }
  for (std::string& e : greenhpc::obs::validate_manifest_text(manifest)) {
    errors.push_back(std::move(e));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h") {
    print_usage();
    return argc < 2 ? 2 : 0;
  }

  const std::string first = argv[1];
  if (first == "--metrics" || first == "--attrib") {
    if (argc < 3) {
      std::cerr << "error: " << first << " needs a file (see --help)\n";
      return 2;
    }
    const char* label = first == "--metrics" ? "metrics" : "attribution";
    std::ifstream in;
    if (const int rc = open_or_fail(argv[2], in)) return rc;
    std::vector<std::string> warnings;
    const std::vector<std::string> errors =
        first == "--metrics" ? greenhpc::obs::validate_metrics_jsonl(in, &warnings)
                             : greenhpc::obs::validate_attribution_jsonl(in, &warnings);
    print_warnings(warnings, label);
    if (errors.empty()) {
      std::cout << label << " ok: " << argv[2] << "\n";
      return 0;
    }
    for (const std::string& e : errors) std::cerr << label << " error: " << e << "\n";
    return 1;
  }

  const bool validate_only = first == "--validate";
  if (validate_only && argc < 3) {
    std::cerr << "error: --validate needs a file (see --help)\n";
    return 2;
  }
  const std::string path = validate_only ? argv[2] : first;

  std::ifstream in;
  if (const int rc = open_or_fail(path, in)) return rc;
  greenhpc::obs::TraceParseResult result = greenhpc::obs::summarize_trace(in);
  if (validate_only) {
    // Re-read for the manifest: the event parser skips nested objects, so
    // the provenance header must be pulled from the raw text.
    std::ifstream reread(path);
    std::ostringstream buffer;
    buffer << reread.rdbuf();
    std::vector<std::string> warnings;
    check_embedded_manifest(buffer.str(), result.errors, warnings);
    print_warnings(warnings, "trace");
    if (result.ok()) {
      std::cout << "trace ok: " << path << " (" << result.events.size() << " events)\n";
      return 0;
    }
    for (const std::string& e : result.errors) std::cerr << "trace error: " << e << "\n";
    return 1;
  }
  std::cout << greenhpc::obs::render_trace_report(result);
  return result.ok() ? 0 : 1;
}
