// trace_report — summarizer/validator for the flight recorder's outputs.
//
// Modes:
//   trace_report TRACE.json             parse + human-readable summary
//   trace_report --validate TRACE.json  parse only; exit 1 on schema errors
//   trace_report --metrics FILE.jsonl   validate a metrics JSONL export;
//                                       exit 1 on schema errors
//
// The summary groups complete spans by name (the step-phase profile),
// matched async spans by category (job.queue / job.run / migration pipes),
// and counts every event kind — enough to sanity-check a run from a
// terminal without loading Perfetto. CI's bench-smoke job runs the
// --validate and --metrics modes against the flagship scenario's exports.

#include <fstream>
#include <iostream>
#include <string>

#include "obs/trace_report.hpp"

namespace {

void print_usage() {
  std::cout << "trace_report — flight-recorder trace/metrics summarizer\n\n"
               "usage:\n"
               "  trace_report TRACE.json             summarize a trace file\n"
               "  trace_report --validate TRACE.json  schema check only (exit 1 on errors)\n"
               "  trace_report --metrics FILE         validate a metrics JSONL export\n"
               "  trace_report --help                 this text\n";
}

int open_or_fail(const std::string& path, std::ifstream& in) {
  in.open(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h") {
    print_usage();
    return argc < 2 ? 2 : 0;
  }

  const std::string first = argv[1];
  if (first == "--metrics") {
    if (argc < 3) {
      std::cerr << "error: --metrics needs a file (see --help)\n";
      return 2;
    }
    std::ifstream in;
    if (const int rc = open_or_fail(argv[2], in)) return rc;
    const std::vector<std::string> errors = greenhpc::obs::validate_metrics_jsonl(in);
    if (errors.empty()) {
      std::cout << "metrics ok: " << argv[2] << "\n";
      return 0;
    }
    for (const std::string& e : errors) std::cerr << "metrics error: " << e << "\n";
    return 1;
  }

  const bool validate_only = first == "--validate";
  if (validate_only && argc < 3) {
    std::cerr << "error: --validate needs a file (see --help)\n";
    return 2;
  }
  const std::string path = validate_only ? argv[2] : first;

  std::ifstream in;
  if (const int rc = open_or_fail(path, in)) return rc;
  const greenhpc::obs::TraceParseResult result = greenhpc::obs::summarize_trace(in);
  if (validate_only) {
    if (result.ok()) {
      std::cout << "trace ok: " << path << " (" << result.events.size() << " events)\n";
      return 0;
    }
    for (const std::string& e : result.errors) std::cerr << "trace error: " << e << "\n";
    return 1;
  }
  std::cout << greenhpc::obs::render_trace_report(result);
  return result.ok() ? 0 : 1;
}
