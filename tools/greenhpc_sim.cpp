// greenhpc_sim — command-line scenario runner for the datacenter twin.
//
// The adoption-grade front door: run a configurable simulation window with a
// chosen scheduler, power cap, battery, and workload intensity; print the
// run summary; optionally export the monthly series and per-job footprints
// as CSV (the shareable dataset Sec. IV-B of the paper asks facilities to
// provide).
//
// Fleet mode (--fleet N) swaps the single twin for a geo-distributed fleet
// of N reference regions under one routed workload and prints per-region
// plus aggregate summaries.
//
// Experiment mode (--replicas N, optionally --sweep NAME / --scenario NAME)
// replaces the single run with a Monte-Carlo ensemble: N independently-seeded
// replicas execute in parallel (--jobs K worker threads) and every metric is
// reported as mean ± 95% CI instead of a point estimate.
//
// Examples:
//   greenhpc_sim --scheduler carbon_aware --start 2021-01 --months 12
//   greenhpc_sim --cap 200 --rate 9 --seed 7 --csv out/run1
//   greenhpc_sim --battery 1000 --scheduler power_aware --months 3
//   greenhpc_sim --fleet 3 --router carbon_greedy --months 2
//   greenhpc_sim --replicas 32 --jobs 8 --months 1
//   greenhpc_sim --sweep router --replicas 16 --csv out/routers

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "experiment/aggregator.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/forecast_router.hpp"
#include "forecast/rolling.hpp"
#include "migrate/planner.hpp"
#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "sched/forecast_carbon.hpp"
#include "telemetry/attribution.hpp"
#include "telemetry/experiment.hpp"
#include "telemetry/fleet.hpp"
#include "telemetry/migration.hpp"
#include "telemetry/forecast.hpp"
#include "telemetry/report.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

struct CliOptions {
  core::PolicyKind policy = core::PolicyKind::kBackfill;
  util::MonthKey start{2021, 1};
  int months = 3;
  std::uint64_t seed = 42;
  std::optional<double> cap_w;
  std::optional<double> battery_kwh;
  double rate_per_hour = 12.0;
  std::string csv_prefix;  // empty = no CSV export
  bool reports = false;
  // Fleet mode.
  int fleet_regions = 0;  // 0 = single-site mode
  std::string router = "carbon_greedy";
  bool router_set = false;
  double transfer_kwh = 0.0;
  // Mid-run checkpoint-and-migrate controls (fleet mode only).
  std::string migration_policy = "off";
  bool migration_set = false;
  double checkpoint_cost = 1.0;
  int max_in_flight = 4;
  bool max_in_flight_set = false;
  // Fault injection (fleet mode only).
  std::string faults = "off";
  double fault_intensity = 1.0;
  bool faults_set = false;
  // End-of-window drain policy (fleet mode only).
  fleet::DrainMode drain_mode = fleet::DrainMode::kDeliverOnly;
  bool drain_set = false;
  // Forecast controls (forecast_carbon scheduler / *_forecast routers).
  std::string forecast_model = "climatology";
  int forecast_horizon_hours = 24;
  // Observability (single-run and fleet modes).
  std::string trace_file;    // empty = no decision/phase trace
  std::string metrics_file;  // empty = no per-step metrics export
  std::string attrib_file;   // empty = no per-job attribution export
  int metrics_interval = 1;  // sample every Nth coordinator step
  obs::TraceDetail trace_detail = obs::TraceDetail::kChanges;
  // Experiment mode.
  int replicas = 0;  // 0 = single-run mode
  int jobs = 0;      // 0 = shared pool (hardware-sized)
  std::string sweep;     // named sweep from the sweep library
  std::string scenario;  // named scenario from the scenario library
  /// Any scenario-shaping flag was passed explicitly (so --sweep/--scenario
  /// can warn about ignoring it instead of silently dropping it).
  bool run_flags_set = false;
};

void print_usage() {
  std::cout <<
      "greenhpc_sim — energy-aware datacenter twin runner\n\n"
      "options:\n"
      "  --scheduler NAME   " << core::policy_names() << "\n"
      "                     (default easy_backfill; in fleet mode, every\n"
      "                     region runs this scheduler)\n"
      "  --start YYYY-MM    first simulated month (default 2021-01)\n"
      "  --months N         number of months to simulate (default 3)\n"
      "  --seed S           RNG seed (default 42)\n"
      "  --cap W            fixed cluster-wide GPU power cap in watts\n"
      "  --battery KWH      attach a battery of this capacity with the\n"
      "                     threshold arbitrage policy\n"
      "  --rate R           base job submissions per hour (default 12)\n"
      "  --csv PREFIX       write PREFIX_monthly.csv and PREFIX_jobs.csv\n"
      "  --reports          print the markdown report cards\n"
      "  --fleet N          run a geo-distributed fleet of N regions (1..512)\n"
      "                     instead of one twin; the first 4 are the exact\n"
      "                     reference regions, beyond that deterministic\n"
      "                     synthetic variants pad the fleet\n"
      "  --router NAME      fleet routing policy: " << fleet::router_names() << "\n"
      "                     (default carbon_greedy; fleet mode only)\n"
      "  --transfer KWH     network-transfer energy penalty per off-home job\n"
      "                     (fleet mode only, default 0)\n"
      "  --migrate          enable mid-run checkpoint migration with the\n"
      "                     carbon policy (fleet mode only)\n"
      "  --migration-policy NAME\n"
      "                     " << migrate::migration_policy_names() << " (default off);\n"
      "                     running jobs are checkpointed and moved to the\n"
      "                     region whose forecast minimizes the objective\n"
      "  --checkpoint-cost X\n"
      "                     scale on checkpoint size/time/energy (default 1)\n"
      "  --max-in-flight N  transfer-pipe width: checkpoints in flight at once,\n"
      "                     retry-queue entries included (default 4)\n"
      "  --faults NAME      seeded fault injection: " << fault::fault_plan_names() << "\n"
      "                     (default off; fleet mode only). Injects node\n"
      "                     failures, region blackouts/brownouts, migration-\n"
      "                     link faults, and telemetry dropouts; the fleet\n"
      "                     degrades gracefully and reports recovery stats\n"
      "  --fault-intensity X\n"
      "                     multiplier on every rate in the fault plan\n"
      "                     (default 1)\n"
      "  --drain MODE       end-of-window drain: deliver (empty the transfer\n"
      "                     pipe, default) | finish (keep stepping until every\n"
      "                     migrated lineage completes; fleet mode only)\n"
      "  --forecast-model NAME\n"
      "                     model behind the predictive policies:\n"
      "                     " << forecast::model_names() << " (default climatology)\n"
      "  --forecast-horizon H\n"
      "                     forecast lookahead in hours, 1..168 (default 24)\n"
      "  --trace FILE       write a Chrome-trace-event JSONL decision trace\n"
      "                     (job/migration spans, router and scheduler\n"
      "                     rationale, step-phase profile); load in Perfetto\n"
      "                     or summarize with trace_report\n"
      "  --metrics FILE     write per-step fleet/region metrics; .csv gets\n"
      "                     CSV, anything else JSONL\n"
      "  --attrib FILE      write the per-job energy/CO2/cost attribution\n"
      "                     ledger (direct + infra overhead + idle/PUE\n"
      "                     amortization); .csv gets the full per-lineage\n"
      "                     table, anything else the JSONL report; also\n"
      "                     prints per-user and per-region bills\n"
      "  --metrics-interval N\n"
      "                     sample metrics every Nth step (default 1)\n"
      "  --trace-detail D   changes (default: re-record a queued job's\n"
      "                     sched.decision only when its reason changes) |\n"
      "                     full (every queued job, every step)\n"
      "  --replicas N       run N independently-seeded replicas and report\n"
      "                     mean ± 95% CI per metric instead of one run\n"
      "  --jobs K           worker threads: replica ensemble workers in\n"
      "                     experiment mode, region-stepping shards in fleet\n"
      "                     mode (default: hardware concurrency; fleet output\n"
      "                     is bit-identical at any K)\n"
      "  --sweep NAME       run every point of a named parameter sweep\n"
      "                     (" << experiment::sweep_names() << ")\n"
      "  --scenario NAME    run a named scenario from the library\n"
      "                     (" << experiment::scenario_names() << ")\n"
      "  --help             this text\n";
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return std::nullopt;
    }
    if (arg == "--reports") {
      opts.reports = true;
      continue;
    }
    if (arg == "--migrate") {
      opts.run_flags_set = true;
      if (opts.migration_policy == "off") opts.migration_policy = "carbon";
      opts.migration_set = true;
      continue;
    }
    const auto value = next();
    if (!value) {
      std::cerr << "error: " << arg << " needs a value (see --help)\n";
      return std::nullopt;
    }
    try {
      if (arg == "--scheduler") {
        opts.run_flags_set = true;
        const std::optional<core::PolicyKind> policy = core::policy_from_name(*value);
        if (!policy) {
          std::cerr << "error: unknown scheduler '" << *value << "' (" << core::policy_names()
                    << ")\n";
          return std::nullopt;
        }
        opts.policy = *policy;
      } else if (arg == "--start") {
        opts.run_flags_set = true;
        if (value->size() != 7 || (*value)[4] != '-') throw std::invalid_argument("format");
        opts.start.year = std::stoi(value->substr(0, 4));
        opts.start.month = std::stoi(value->substr(5, 2));
        if (opts.start.month < 1 || opts.start.month > 12) throw std::invalid_argument("month");
      } else if (arg == "--months") {
        opts.run_flags_set = true;
        opts.months = std::stoi(*value);
        if (opts.months < 1) throw std::invalid_argument("months");
      } else if (arg == "--seed") {
        opts.seed = std::stoull(*value);
      } else if (arg == "--cap") {
        opts.run_flags_set = true;
        opts.cap_w = std::stod(*value);
        if (*opts.cap_w <= 0.0) throw std::invalid_argument("cap");
      } else if (arg == "--battery") {
        opts.run_flags_set = true;
        opts.battery_kwh = std::stod(*value);
        if (*opts.battery_kwh <= 0.0) throw std::invalid_argument("battery");
      } else if (arg == "--rate") {
        opts.run_flags_set = true;
        opts.rate_per_hour = std::stod(*value);
        if (opts.rate_per_hour <= 0.0) throw std::invalid_argument("rate");
      } else if (arg == "--csv") {
        opts.csv_prefix = *value;
      } else if (arg == "--fleet") {
        opts.run_flags_set = true;
        opts.fleet_regions = std::stoi(*value);
        if (opts.fleet_regions < 1 || opts.fleet_regions > 512) {
          throw std::invalid_argument("fleet");
        }
      } else if (arg == "--router") {
        opts.run_flags_set = true;
        if (!fleet::make_router(*value)) {
          std::cerr << "error: unknown router '" << *value << "' (" << fleet::router_names()
                    << ")\n";
          return std::nullopt;
        }
        opts.router = *value;
        opts.router_set = true;
      } else if (arg == "--transfer") {
        opts.run_flags_set = true;
        opts.transfer_kwh = std::stod(*value);
        if (opts.transfer_kwh < 0.0) throw std::invalid_argument("transfer");
      } else if (arg == "--migration-policy") {
        opts.run_flags_set = true;
        if (!migrate::migration_objective_from_name(*value)) {
          std::cerr << "error: unknown migration policy '" << *value << "' ("
                    << migrate::migration_policy_names() << ")\n";
          return std::nullopt;
        }
        opts.migration_policy = *value;
        opts.migration_set = true;
      } else if (arg == "--checkpoint-cost") {
        opts.run_flags_set = true;
        opts.checkpoint_cost = std::stod(*value);
        if (opts.checkpoint_cost <= 0.0) throw std::invalid_argument("checkpoint-cost");
      } else if (arg == "--max-in-flight") {
        opts.run_flags_set = true;
        opts.max_in_flight = std::stoi(*value);
        if (opts.max_in_flight < 1) throw std::invalid_argument("max-in-flight");
        opts.max_in_flight_set = true;
      } else if (arg == "--faults") {
        opts.run_flags_set = true;
        if (!fault::fault_plan_from_name(*value)) {
          std::cerr << "error: unknown fault plan '" << *value << "' ("
                    << fault::fault_plan_names() << ")\n";
          return std::nullopt;
        }
        opts.faults = *value;
        opts.faults_set = true;
      } else if (arg == "--fault-intensity") {
        opts.run_flags_set = true;
        opts.fault_intensity = std::stod(*value);
        if (opts.fault_intensity < 0.0) throw std::invalid_argument("fault-intensity");
        opts.faults_set = true;
      } else if (arg == "--drain") {
        opts.run_flags_set = true;
        if (*value == "deliver") {
          opts.drain_mode = fleet::DrainMode::kDeliverOnly;
        } else if (*value == "finish") {
          opts.drain_mode = fleet::DrainMode::kFinishLineages;
        } else {
          std::cerr << "error: unknown drain mode '" << *value << "' (deliver | finish)\n";
          return std::nullopt;
        }
        opts.drain_set = true;
      } else if (arg == "--forecast-model") {
        opts.run_flags_set = true;
        if (!forecast::model_known(*value)) {
          std::cerr << "error: unknown forecast model '" << *value << "' ("
                    << forecast::model_names() << ")\n";
          return std::nullopt;
        }
        opts.forecast_model = *value;
      } else if (arg == "--forecast-horizon") {
        opts.run_flags_set = true;
        opts.forecast_horizon_hours = std::stoi(*value);
        if (opts.forecast_horizon_hours < 1 || opts.forecast_horizon_hours > 168) {
          throw std::invalid_argument("forecast-horizon");
        }
      } else if (arg == "--trace") {
        opts.trace_file = *value;
      } else if (arg == "--metrics") {
        opts.metrics_file = *value;
      } else if (arg == "--attrib") {
        opts.attrib_file = *value;
      } else if (arg == "--metrics-interval") {
        opts.metrics_interval = std::stoi(*value);
        if (opts.metrics_interval < 1) throw std::invalid_argument("metrics-interval");
      } else if (arg == "--trace-detail") {
        if (*value == "full") {
          opts.trace_detail = obs::TraceDetail::kFull;
        } else if (*value == "changes") {
          opts.trace_detail = obs::TraceDetail::kChanges;
        } else {
          std::cerr << "error: unknown trace detail '" << *value << "' (full | changes)\n";
          return std::nullopt;
        }
      } else if (arg == "--replicas") {
        opts.replicas = std::stoi(*value);
        if (opts.replicas < 1) throw std::invalid_argument("replicas");
      } else if (arg == "--jobs") {
        opts.jobs = std::stoi(*value);
        if (opts.jobs < 0) throw std::invalid_argument("jobs");
      } else if (arg == "--sweep") {
        if (!experiment::find_sweep(*value)) {
          std::cerr << "error: unknown sweep '" << *value << "' ("
                    << experiment::sweep_names() << ")\n";
          return std::nullopt;
        }
        opts.sweep = *value;
      } else if (arg == "--scenario") {
        if (!experiment::find_scenario(*value)) {
          std::cerr << "error: unknown scenario '" << *value << "' ("
                    << experiment::scenario_names() << ")\n";
          return std::nullopt;
        }
        opts.scenario = *value;
      } else {
        std::cerr << "error: unknown option '" << arg << "' (see --help)\n";
        return std::nullopt;
      }
    } catch (const std::exception&) {
      std::cerr << "error: bad value '" << *value << "' for " << arg << "\n";
      return std::nullopt;
    }
  }
  return opts;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

/// The flight recorder the --trace/--metrics flags describe, or nullptr when
/// neither was given (the uninstrumented path: subsystems see a null
/// recorder and skip every observability touch).
std::unique_ptr<obs::FlightRecorder> make_recorder(const CliOptions& opts) {
  if (opts.trace_file.empty() && opts.metrics_file.empty() && opts.attrib_file.empty()) {
    return nullptr;
  }
  obs::FlightRecorderConfig config;
  config.trace = !opts.trace_file.empty();
  config.metrics = !opts.metrics_file.empty();
  config.attribution = !opts.attrib_file.empty();
  config.metrics_interval = static_cast<std::size_t>(opts.metrics_interval);
  config.trace_detail = opts.trace_detail;
  return std::make_unique<obs::FlightRecorder>(config);
}

bool ends_with_csv(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

/// The provenance header every export from this invocation carries. The
/// caller fills region_names; wall_seconds is stamped at flush time.
obs::RunManifest manifest_for(const CliOptions& opts) {
  obs::RunManifest manifest = obs::make_manifest("greenhpc_sim");
  std::ostringstream scenario;
  if (opts.fleet_regions > 0) {
    scenario << "fleet/r" << opts.fleet_regions << "/" << opts.router << "/"
             << core::policy_name(opts.policy);
    if (opts.migration_policy != "off") scenario << "/mig-" << opts.migration_policy;
    if (opts.faults != "off") {
      scenario << "/faults-" << opts.faults;
      if (opts.fault_intensity != 1.0) scenario << "x" << opts.fault_intensity;
    }
  } else {
    scenario << "single/" << core::policy_name(opts.policy);
  }
  scenario << "/" << opts.start.label() << "+" << opts.months << "mo";
  manifest.scenario = scenario.str();
  manifest.seed = opts.seed;
  manifest.regions = static_cast<std::size_t>(opts.fleet_regions);
  return manifest;
}

/// Writes whichever observability outputs the run collected, each stamped
/// with the run manifest. The metrics/attribution format follows the
/// filename: `.csv` gets CSV, everything else JSONL. `reference` carries the
/// fleet totals the attribution export re-checks conservation against (unused
/// when --attrib was not given).
bool flush_recorder(const obs::FlightRecorder& recorder, const CliOptions& opts,
                    obs::RunManifest manifest, const obs::AttributionReference& reference) {
  // Host wall-clock duration, measured by the recorder itself (its pid-99
  // profiler lane already owns the wall clock).
  manifest.wall_seconds = recorder.wall_us() * 1e-6;
  if (!opts.trace_file.empty()) {
    std::ostringstream buffer;
    // Export-time read of the merged trace, not event emission: the shards
    // were already folded by the recorder.  det_lint: allow(raw-trace)
    recorder.trace().write(buffer);
    std::string text = buffer.str();
    // Inject the manifest as a metadata event right after the opening "[\n"
    // (the writer owns the brackets, so the header is spliced into its text).
    const std::string manifest_line =
        "{\"name\": \"run_manifest\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"manifest\": " +
        // det_lint: allow(raw-trace)
        manifest.to_json() + (recorder.trace().size() > 0 ? "},\n" : "}\n");
    text.insert(2, manifest_line);
    if (!write_file(opts.trace_file, text)) return false;
    // det_lint: allow(raw-trace)
    std::cout << "wrote trace " << opts.trace_file << " (" << recorder.trace().size()
              << " events)\n";
  }
  if (!opts.metrics_file.empty()) {
    const bool csv = ends_with_csv(opts.metrics_file);
    const std::string header = csv ? "# manifest: " + manifest.to_json() + "\n"
                                   : "{\"manifest\": " + manifest.to_json() + "}\n";
    const std::string body = csv ? recorder.metrics_csv() : recorder.metrics_jsonl();
    if (!write_file(opts.metrics_file, header + body)) return false;
    std::cout << "wrote metrics " << opts.metrics_file << "\n";
  }
  if (!opts.attrib_file.empty() && recorder.attribution_on()) {
    const obs::AttributionReport report = recorder.attribution().report();
    const std::string body =
        ends_with_csv(opts.attrib_file)
            ? obs::attribution_csv(report, &manifest)
            : obs::attribution_json(report, reference, &manifest);
    if (!write_file(opts.attrib_file, body)) return false;
    std::cout << "wrote attribution " << opts.attrib_file << " (" << report.jobs.size()
              << " lineages)\n";
  }
  return true;
}

/// Prints the per-user (and, in fleet mode, per-region) attribution bills.
void print_attribution_tables(const obs::FlightRecorder& recorder, bool fleet_mode) {
  if (!recorder.attribution_on()) return;
  const obs::AttributionReport report = recorder.attribution().report();
  std::cout << "\nattribution (per-user bill):\n"
            << telemetry::attribution_user_table(report);
  if (fleet_mode) {
    std::cout << "\nattribution (per-region decomposition):\n"
              << telemetry::attribution_region_table(report);
  }
}

/// The scenario the non-experiment flags describe (used when --replicas is
/// given without --scenario, so `--fleet 4 --replicas 16` just works).
experiment::ScenarioSpec spec_from_options(const CliOptions& opts) {
  experiment::ScenarioSpec spec;
  spec.name = "cli";
  spec.start = opts.start;
  spec.months = opts.months;
  spec.scheduler = opts.policy;
  spec.rate_per_hour = opts.rate_per_hour;
  spec.forecast_model = opts.forecast_model;
  spec.forecast_horizon_hours = opts.forecast_horizon_hours;
  if (opts.fleet_regions > 0) {
    spec.mode = experiment::Mode::kFleet;
    spec.region_count = static_cast<std::size_t>(opts.fleet_regions);
    spec.router = opts.router;
    spec.transfer_kwh_per_job = opts.transfer_kwh;
    spec.migration_policy = opts.migration_policy;
    spec.checkpoint_cost = opts.checkpoint_cost;
    spec.max_in_flight = opts.max_in_flight;
    spec.faults = opts.faults;
    spec.fault_intensity = opts.fault_intensity;
    if (opts.cap_w || opts.battery_kwh) {
      std::cerr << "note: --cap/--battery are single-site options; ignored in fleet mode\n";
    }
  } else {
    spec.power_cap_w = opts.cap_w;
    spec.battery_kwh = opts.battery_kwh;
    if (opts.router_set || opts.transfer_kwh > 0.0 || opts.migration_set ||
        opts.checkpoint_cost != 1.0 || opts.drain_set || opts.max_in_flight_set ||
        opts.faults_set) {
      std::cerr << "note: --router/--transfer/--migrate/--checkpoint-cost/--max-in-flight/"
                   "--faults/--drain only apply with --fleet N; ignored\n";
    }
  }
  return spec;
}

/// The key columns a sweep comparison prints (full detail goes to CSV/JSON).
const std::vector<std::string> kSweepColumns = {
    "completed_gpu_hours", "energy_mwh", "cost_usd", "co2_kg", "mean_queue_wait_hours"};

/// Experiment mode: replica ensembles with mean ± 95% CI verdicts.
int run_experiment(const CliOptions& opts) {
  experiment::RunnerOptions runner_opts;
  runner_opts.replicas = static_cast<std::size_t>(opts.replicas > 0 ? opts.replicas : 8);
  runner_opts.base_seed = opts.seed;
  runner_opts.jobs = static_cast<std::size_t>(opts.jobs);
  const experiment::ReplicaRunner runner(runner_opts);

  std::cout << "greenhpc_sim experiment: " << runner_opts.replicas << " replica(s), "
            << (opts.jobs > 0 ? std::to_string(opts.jobs) : std::string("hardware"))
            << " worker(s), base seed " << opts.seed << "\n";

  if (opts.reports) std::cerr << "note: --reports is a single-run option; ignored here\n";
  if (!opts.trace_file.empty() || !opts.metrics_file.empty() || !opts.attrib_file.empty()) {
    std::cerr << "note: --trace/--metrics/--attrib instrument a single run; ignored in "
                 "experiment mode\n";
  }
  if (!opts.sweep.empty() && !opts.scenario.empty()) {
    std::cerr << "note: --sweep overrides --scenario; scenario '" << opts.scenario
              << "' ignored\n";
  }
  if ((!opts.sweep.empty() || !opts.scenario.empty()) && opts.run_flags_set) {
    // Named points define their own window and controls; only --seed,
    // --replicas, --jobs, and --csv apply.
    std::cerr << "note: --sweep/--scenario fix the scenario; the --scheduler/--start/"
                 "--months/--cap/--battery/--rate/--fleet/--router/--transfer/"
                 "--migrate/--migration-policy/--checkpoint-cost/--max-in-flight/"
                 "--faults/--forecast-* flags are ignored\n";
  }

  if (!opts.sweep.empty()) {
    const experiment::SweepSpec& sweep = *experiment::find_sweep(opts.sweep);
    std::cout << "sweep '" << sweep.name << "': " << sweep.description << ", "
              << sweep.points.size() << " point(s)\n\n";
    std::vector<telemetry::SweepPointStats> points;
    for (const experiment::ScenarioSpec& point : sweep.points) {
      points.push_back({point.label(), experiment::Aggregator::aggregate(runner.run(point))});
    }
    std::cout << telemetry::sweep_table(points, kSweepColumns);
    if (!opts.csv_prefix.empty()) {
      if (!write_file(opts.csv_prefix + "_sweep.csv", telemetry::sweep_csv(points))) return 1;
      if (!write_file(opts.csv_prefix + "_sweep.json",
                      telemetry::sweep_json(sweep.name, points))) {
        return 1;
      }
      std::cout << "\nwrote " << opts.csv_prefix << "_sweep.csv and " << opts.csv_prefix
                << "_sweep.json\n";
    }
    return 0;
  }

  const experiment::ScenarioSpec spec = !opts.scenario.empty()
                                            ? *experiment::find_scenario(opts.scenario)
                                            : spec_from_options(opts);
  // Named scenarios report under their library name so exports of two
  // scenarios sharing default controls stay distinguishable.
  const std::string label =
      !opts.scenario.empty() ? spec.name + " (" + spec.label() + ")" : spec.label();
  std::cout << "scenario " << label << ", window " << spec.start.label() << " + "
            << (spec.days > 0 ? std::to_string(spec.days) + " day(s)"
                              : std::to_string(spec.months) + " month(s)")
            << "\n\n";
  // Wall clock by design: stamps the export manifest's host-side duration,
  // never sim state.  det_lint: allow(wall-clock)
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<experiment::ReplicaResult> results = runner.run(spec);
  const double wall_seconds =
      // det_lint: allow(wall-clock)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  const std::vector<telemetry::MetricStats> stats = experiment::Aggregator::aggregate(results);
  std::cout << telemetry::experiment_table(stats);
  if (!opts.csv_prefix.empty()) {
    obs::RunManifest manifest = obs::make_manifest("greenhpc_sim");
    manifest.scenario = label;
    manifest.seed = opts.seed;
    manifest.regions = spec.mode == experiment::Mode::kFleet ? spec.region_count : 0;
    manifest.wall_seconds = wall_seconds;
    if (!write_file(opts.csv_prefix + "_experiment.csv",
                    "# manifest: " + manifest.to_json() + "\n" +
                        telemetry::experiment_csv(stats))) {
      return 1;
    }
    if (!write_file(opts.csv_prefix + "_experiment.json",
                    telemetry::experiment_json(label, stats, manifest.to_json()))) {
      return 1;
    }
    std::cout << "\nwrote " << opts.csv_prefix << "_experiment.csv and " << opts.csv_prefix
              << "_experiment.json\n";
  }
  return 0;
}

/// Fleet mode: N reference regions, one routed workload, lockstep clock.
int run_fleet(const CliOptions& opts, util::MonthSpan first, util::MonthSpan last) {
  if (opts.cap_w || opts.battery_kwh || !opts.csv_prefix.empty() || opts.reports) {
    std::cerr << "note: --cap/--battery/--csv/--reports are single-site options; "
                 "ignored in fleet mode\n";
  }

  std::vector<fleet::RegionProfile> profiles =
      fleet::make_synthetic_fleet(static_cast<std::size_t>(opts.fleet_regions));

  fleet::FleetConfig config;
  config.seed = opts.seed;
  config.start = first.start - util::days(7);  // warm-up week
  // --jobs drives region-parallel stepping here (bit-identical at any width).
  config.step_jobs = static_cast<std::size_t>(opts.jobs);
  // --rate is quoted per reference-site's worth of GPUs; scale to capacity.
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles, opts.rate_per_hour);
  config.transfer_energy_per_job = util::kilowatt_hours(opts.transfer_kwh);
  config.migration.objective = *migrate::migration_objective_from_name(opts.migration_policy);
  config.migration.checkpoint.cost_scale = opts.checkpoint_cost;
  config.migration.max_in_flight = static_cast<std::size_t>(opts.max_in_flight);
  config.migration.forecaster.model = opts.forecast_model;
  config.migration.forecaster.horizon = util::hours(opts.forecast_horizon_hours);
  config.faults = fault::fault_plan_from_name(opts.faults)->scaled(opts.fault_intensity);

  const core::ForecastControls forecast{opts.forecast_model,
                                        util::hours(opts.forecast_horizon_hours)};
  fleet::FleetCoordinator coordinator(
      config, profiles,
      fleet::make_router(opts.router, forecast.model, forecast.horizon),
      [&] { return core::make_scheduler(opts.policy, forecast); });

  std::cout << "greenhpc_sim fleet: " << opts.fleet_regions << " region(s), router "
            << opts.router << ", scheduler " << core::policy_name(opts.policy) << ", "
            << opts.start.label() << " + " << opts.months << " month(s), seed " << opts.seed;
  if (opts.transfer_kwh > 0.0) std::cout << ", transfer " << opts.transfer_kwh << " kWh/job";
  if (opts.migration_policy != "off") {
    std::cout << ", migration " << opts.migration_policy;
  }
  if (opts.faults != "off") {
    std::cout << ", faults " << opts.faults;
    if (opts.fault_intensity != 1.0) std::cout << " x" << opts.fault_intensity;
  }
  std::cout << "\n";

  const std::unique_ptr<obs::FlightRecorder> recorder = make_recorder(opts);
  if (recorder) coordinator.set_recorder(recorder.get());

  coordinator.run_until(first.start);  // warm-up
  coordinator.run_until(last.end);
  coordinator.drain_migrations(opts.drain_mode);  // never strand a checkpoint mid-pipe
  if (recorder) {
    obs::RunManifest manifest = manifest_for(opts);
    for (const fleet::RegionProfile& profile : profiles) {
      manifest.region_names.push_back(profile.name);
    }
    obs::AttributionReference reference;
    if (recorder->attribution_on()) {
      const telemetry::FleetRunSummary totals = coordinator.summary();
      reference.grid = totals.total.grid_totals;
      reference.transfer = totals.transfer;
      for (std::size_t i = 0; i < coordinator.region_count(); ++i) {
        reference.accountant += coordinator.region(i).accountant().totals();
      }
    }
    if (!flush_recorder(*recorder, opts, std::move(manifest), reference)) return 1;
  }

  const telemetry::FleetRunSummary summary = coordinator.summary();
  std::cout << "\nper-region:\n" << telemetry::fleet_region_table(summary);
  std::cout << "\nfleet aggregate:\n" << telemetry::fleet_total_table(summary);
  if (coordinator.planner() != nullptr) {
    std::cout << "\nmigration ledger:\n" << telemetry::migration_table(summary.migration);
  }
  if (coordinator.fault_injector() != nullptr) {
    const fault::FaultStats& fs = coordinator.fault_stats();
    util::Table faults({"metric", "value"});
    faults.add("node failures", fs.node_failures);
    faults.add("region blackouts", fs.blackouts);
    faults.add("region brownouts", fs.brownouts);
    faults.add("telemetry dropouts", fs.dropouts);
    faults.add("jobs requeued (node loss)", fs.jobs_requeued);
    faults.add("migration link stalls", fs.link_stalls);
    faults.add("migration link failures", fs.link_failures);
    faults.add("migration retries", fs.migration_retries);
    faults.add("migrations abandoned", fs.migrations_abandoned);
    faults.add("capacity lost (GPU-h)", util::fmt_fixed(fs.capacity_gpu_hours_lost, 0));
    faults.add("node MTTR (h)", util::fmt_fixed(fs.mttr_hours(), 2));
    std::cout << "\nfault & recovery ledger:\n" << faults;
  }

  // Where did the energy come from? Per-region grid character over the window.
  util::Table grids({"region", "tz_h", "renewable_pct", "avg_lmp_usd_mwh", "avg_co2_g_kwh"});
  for (std::size_t i = 0; i < coordinator.region_count(); ++i) {
    const core::Datacenter& dc = coordinator.region(i);
    double renewable = 0.0, lmp = 0.0, carbon = 0.0;
    int months = 0;
    for (util::MonthKey m = util::month_of(first.start + util::days(8));
         !(util::month_of(last.end - util::seconds(1.0)) < m); m = m.next(), ++months) {
      renewable += dc.fuel_mix().monthly_renewable_pct(m);
      lmp += dc.prices().monthly_average(m).usd_per_mwh();
      carbon += dc.carbon().monthly_average(m).g_per_kwh();
    }
    if (months == 0) months = 1;
    grids.add(coordinator.profile(i).name,
              util::fmt_fixed(coordinator.profile(i).timezone_offset_hours, 1),
              util::fmt_fixed(renewable / months, 2), util::fmt_fixed(lmp / months, 1),
              util::fmt_fixed(carbon / months, 0));
  }
  std::cout << "\ngrid character (window means):\n" << grids;

  if (const auto* fr = dynamic_cast<const fleet::ForecastRouter*>(&coordinator.router())) {
    std::cout << "\nrouter forecast skill (realized MAPE vs actuals):\n"
              << telemetry::forecast_skill_table(fr->skills());
  }
  if (recorder) print_attribution_tables(*recorder, /*fleet_mode=*/true);
  return 0;
}

}  // namespace

/// The dispatched run (single, fleet, or experiment) for parsed options.
int run_cli(const CliOptions& opts) {
  if (opts.replicas > 0 || !opts.sweep.empty() || !opts.scenario.empty()) {
    return run_experiment(opts);
  }
  if (opts.jobs > 0 && opts.fleet_regions == 0) {
    std::cerr << "note: --jobs applies with --replicas/--sweep/--scenario or --fleet; ignored\n";
  }

  const util::MonthSpan first = util::month_span(opts.start);
  const util::MonthKey last_key =
      util::MonthKey::from_index(opts.start.index_from_epoch() + opts.months - 1);
  const util::MonthSpan last = util::month_span(last_key);

  if (opts.fleet_regions > 0) return run_fleet(opts, first, last);

  // The same twin assembly an experiment replica uses — a `--seed S` single
  // run is bit-identical to the corresponding replica of an ensemble.
  const std::unique_ptr<core::Datacenter> dc_owner =
      experiment::make_single_site(spec_from_options(opts), opts.seed);
  core::Datacenter& dc = *dc_owner;

  std::cout << "greenhpc_sim: " << core::policy_name(opts.policy) << ", "
            << opts.start.label() << " + " << opts.months << " month(s), seed " << opts.seed;
  if (opts.cap_w) std::cout << ", cap " << *opts.cap_w << " W";
  if (opts.battery_kwh) std::cout << ", battery " << *opts.battery_kwh << " kWh";
  std::cout << "\n";

  const std::unique_ptr<obs::FlightRecorder> recorder = make_recorder(opts);
  if (recorder) dc.set_recorder(recorder.get());

  dc.run_until(first.start);  // warm-up
  dc.run_until(last.end);
  if (recorder) {
    obs::AttributionReference reference;
    if (recorder->attribution_on()) {
      reference.accountant = dc.accountant().totals();
      reference.grid = dc.summary().grid_totals;
      // No transfer ledger in single-site mode: the reference stays zero.
    }
    if (!flush_recorder(*recorder, opts, manifest_for(opts), reference)) return 1;
  }

  // --- summary -------------------------------------------------------------
  const core::RunSummary s = dc.summary();
  util::Table summary({"metric", "value"});
  summary.add("jobs submitted", s.jobs_submitted);
  summary.add("jobs completed", s.jobs_completed);
  summary.add("completed GPU-hours", util::fmt_fixed(s.completed_gpu_hours, 0));
  summary.add("mean utilization %", util::fmt_fixed(100.0 * s.mean_utilization, 1));
  summary.add("mean queue wait (h)", util::fmt_fixed(s.mean_queue_wait_hours, 2));
  summary.add("mean PUE", util::fmt_fixed(s.mean_pue, 3));
  summary.add("facility energy (MWh)", util::fmt_fixed(s.grid_totals.energy.megawatt_hours(), 2));
  summary.add("electricity cost ($)", util::fmt_fixed(s.grid_totals.cost.dollars(), 0));
  summary.add("CO2 (t)", util::fmt_fixed(s.grid_totals.carbon.metric_tons(), 2));
  summary.add("water (m^3)", util::fmt_fixed(s.grid_totals.water.cubic_meters(), 1));
  summary.add("throttle hours", util::fmt_fixed(s.throttle_hours, 1));
  std::cout << "\n" << summary;

  // --- monthly table ---------------------------------------------------------
  util::Table monthly({"month", "avg_power_kw", "utilization", "pue", "renewable_pct",
                       "avg_lmp_usd_mwh", "avg_temp_f"});
  const auto power = dc.monthly_power().monthly();
  for (const auto& m : power) {
    if (m.month < opts.start || last_key < m.month) continue;  // drop warm-up
    const auto util_m = dc.monthly_utilization().month(m.month);
    const auto pue_m = dc.monthly_pue().month(m.month);
    monthly.add(m.month.label(), util::fmt_fixed(m.time_weighted_mean, 1),
                util::fmt_fixed(util_m ? util_m->time_weighted_mean : 0.0, 3),
                util::fmt_fixed(pue_m ? pue_m->time_weighted_mean : 0.0, 3),
                util::fmt_fixed(dc.fuel_mix().monthly_renewable_pct(m.month), 2),
                util::fmt_fixed(dc.prices().monthly_average(m.month).usd_per_mwh(), 1),
                util::fmt_fixed(dc.weather().monthly_average(m.month).fahrenheit(), 1));
  }
  std::cout << "\n" << monthly;

  if (const sched::ForecastCarbonScheduler* fs = experiment::forecast_scheduler_of(dc)) {
    std::cout << "\nforecast skill (realized MAPE vs actuals):\n"
              << telemetry::forecast_skill_table({fs->skill()});
  }

  if (opts.reports) {
    const telemetry::ReportCard card(&dc.accountant());
    std::cout << "\n" << card.cluster_summary() << "\n" << card.user_leaderboard(10);
  }
  if (recorder) print_attribution_tables(*recorder, /*fleet_mode=*/false);

  if (!opts.csv_prefix.empty()) {
    const telemetry::ReportCard card(&dc.accountant());
    if (!write_file(opts.csv_prefix + "_monthly.csv", monthly.to_csv())) return 1;
    if (!write_file(opts.csv_prefix + "_jobs.csv", card.jobs_csv())) return 1;
    std::cout << "\nwrote " << opts.csv_prefix << "_monthly.csv and " << opts.csv_prefix
              << "_jobs.csv\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  const std::optional<CliOptions> parsed = parse(argc, argv);
  if (!parsed) return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 2;
  try {
    return run_cli(*parsed);
  } catch (const std::exception& e) {
    // Anything the deeper layers reject (scenario validation, file IO...)
    // surfaces as a CLI error, never an abort.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
