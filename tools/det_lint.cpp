// det_lint — determinism lint for the simulator sources.
//
// The repo's headline guarantee is bit-identical runs: same seed, same
// binary, same digests — serial or region-parallel. Every class of bug that
// has threatened that guarantee so far is lexically visible in the source,
// so this tool gates them in CI instead of relying on review memory:
//
//   unordered-iter  range-for over a std::unordered_map/unordered_set
//                   variable. Iteration order is implementation-defined, so
//                   anything order-sensitive downstream (float accumulation,
//                   output rows, decision scans) can drift between
//                   standard-library versions.
//   wall-clock      wall-clock reads (system_clock, steady_clock,
//                   gettimeofday, std::time, ...) — sim-domain code must
//                   derive every timestamp from the simulation clock. The
//                   flight recorder's wall-time profile (pid 99) is the one
//                   sanctioned exception and carries allow comments.
//   rng             rand()/srand()/random_device/... — all randomness must
//                   flow from the run's seeded mt19937_64 streams.
//   pointer-key     std::map/std::set keyed on a pointer type. Pointer
//                   order is allocation order, which varies run to run; key
//                   by a stable id instead.
//   raw-trace       .trace()/->trace() emission outside src/obs/ and the
//                   coordinator's serial phases. Region-domain events must
//                   go through the per-region trace shards or the
//                   parallel==serial trace-merge guarantee breaks.
//
// Escape hatch: a `// det_lint: allow(rule)` comment on the flagged line or
// the line above suppresses that rule there (comma-separate to allow
// several). Allows are for sites that are *reviewed* order-independent or
// deliberately wall-clock (profiling), and they double as documentation.
//
// Modes:
//   det_lint PATH...     scan files / directories (recurses into
//                        .hpp/.cpp/.h/.cc); exit 1 on any violation
//   det_lint --self-test run the embedded rule fixtures; exit 1 on mismatch
//
// Implementation note: this is a lexical linter in the spirit of
// trace_report's hand-rolled JSON scanner — comments and string literals are
// blanked first, then the rules run over cleaned lines. It neither parses
// C++ nor chases types, so it can be fooled (an `auto` alias of an
// unordered map, an iterator loop); the gtest determinism pins remain the
// ground truth. The lint exists to catch the obvious regression cheaply, at
// review time, with a file:line message.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

// --- pass 1: blank comments + literals, harvest allow() directives ----------

struct CleanFile {
  std::vector<std::string> code;              ///< literals/comments → spaces
  std::vector<std::set<std::string>> allows;  ///< per line, rules allowed
};

void harvest_allows(const std::string& comment, std::set<std::string>& allows) {
  static const std::string kTag = "det_lint: allow(";
  std::size_t at = comment.find(kTag);
  while (at != std::string::npos) {
    const std::size_t open = at + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string rule;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!rule.empty()) allows.insert(rule);
        rule.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        rule.push_back(c);
      }
    }
    at = comment.find(kTag, close);
  }
}

CleanFile clean_lines(const std::vector<std::string>& raw) {
  CleanFile out;
  out.code.reserve(raw.size());
  out.allows.resize(raw.size());
  bool in_block = false;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::string code(line.size(), ' ');
    std::string comment;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_block) {
        comment.push_back(c);
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          ++i;
          in_block = false;
        }
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        comment.append(line.substr(i));
        break;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        ++i;
        in_block = true;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        continue;  // literal contents stay blank
      }
      code[i] = c;
    }
    harvest_allows(comment, out.allows[li]);
    out.code.push_back(std::move(code));
  }
  return out;
}

// --- token helpers -----------------------------------------------------------

/// First position >= from where `tok` appears as a whole identifier.
std::size_t find_token(const std::string& s, const std::string& tok, std::size_t from = 0) {
  std::size_t at = s.find(tok, from);
  while (at != std::string::npos) {
    const bool left_ok = at == 0 || !ident_char(s[at - 1]);
    const std::size_t end = at + tok.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return at;
    at = s.find(tok, at + 1);
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
  return i;
}

/// Last non-space character strictly before position `i`, or '\0'.
char prev_nonspace(const std::string& s, std::size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(s[i])) == 0) return s[i];
  }
  return '\0';
}

/// Identifier ending immediately before `i` (used to resolve `std::time`).
std::string ident_before(const std::string& s, std::size_t i) {
  std::size_t end = i;
  while (end > 0 && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) --end;
  std::size_t begin = end;
  while (begin > 0 && ident_char(s[begin - 1])) --begin;
  return s.substr(begin, end - begin);
}

/// Position just past the `>` matching the `<` at `open` (npos if unmatched).
std::size_t match_angle(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Joins lines [i, i+extra] so declarations/for-headers can span lines.
std::string join_lines(const std::vector<std::string>& code, std::size_t i, std::size_t extra) {
  std::string joined = code[i];
  for (std::size_t j = i + 1; j < code.size() && j <= i + extra; ++j) {
    joined.push_back(' ');
    joined.append(code[j]);
  }
  return joined;
}

// --- rule: unordered-iter ----------------------------------------------------

/// Names of variables (members, locals, parameters) whose declared type
/// mentions unordered_map/unordered_set on the declaration line. Heuristic:
/// identifier after the template argument list (and any outer `>`s), skipping
/// cv/ref tokens; a name followed by `(` is a function and is skipped.
std::set<std::string> collect_unordered_names(const std::vector<std::string>& code) {
  std::set<std::string> names;
  for (std::size_t li = 0; li < code.size(); ++li) {
    for (const char* kw : {"unordered_map", "unordered_set"}) {
      std::size_t at = find_token(code[li], kw);
      while (at != std::string::npos) {
        const std::string joined = join_lines(code, li, 3);
        std::size_t i = skip_spaces(joined, at + std::string(kw).size());
        if (i < joined.size() && joined[i] == '<') {
          std::size_t past = match_angle(joined, i);
          if (past != std::string::npos) {
            // Skip outer template closers, refs, cv — land on the name.
            past = skip_spaces(joined, past);
            while (past < joined.size() && (joined[past] == '>' || joined[past] == '&' ||
                                            joined[past] == '*')) {
              past = skip_spaces(joined, past + 1);
            }
            if (joined.compare(past, 5, "const") == 0 && !ident_char(joined[past + 5])) {
              past = skip_spaces(joined, past + 5);
            }
            std::size_t end = past;
            while (end < joined.size() && ident_char(joined[end])) ++end;
            if (end > past) {
              const std::size_t next = skip_spaces(joined, end);
              const bool is_function = next < joined.size() && joined[next] == '(';
              if (!is_function) names.insert(joined.substr(past, end - past));
            }
          }
        }
        at = find_token(code[li], kw, at + 1);
      }
    }
  }
  return names;
}

void check_unordered_iter(const std::string& path, const CleanFile& file,
                          const std::set<std::string>& names, std::vector<Violation>& out) {
  if (names.empty()) return;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    std::size_t at = find_token(file.code[li], "for");
    while (at != std::string::npos) {
      const std::string joined = join_lines(file.code, li, 2);
      const std::size_t open = skip_spaces(joined, at + 3);
      if (open < joined.size() && joined[open] == '(') {
        // Find the range-for ':' at paren depth 1 (skipping '::').
        int depth = 0;
        std::size_t colon = std::string::npos, close = std::string::npos;
        for (std::size_t i = open; i < joined.size(); ++i) {
          if (joined[i] == '(' || joined[i] == '[') ++depth;
          if (joined[i] == ')' || joined[i] == ']') {
            if (--depth == 0) {
              close = i;
              break;
            }
          }
          if (joined[i] == ':' && depth == 1) {
            const bool dbl = (i > 0 && joined[i - 1] == ':') ||
                             (i + 1 < joined.size() && joined[i + 1] == ':');
            if (!dbl && colon == std::string::npos) colon = i;
          }
        }
        if (colon != std::string::npos && close != std::string::npos && colon < close) {
          const std::string range = joined.substr(colon + 1, close - colon - 1);
          for (const std::string& name : names) {
            if (find_token(range, name) != std::string::npos) {
              out.push_back({path, li + 1, "unordered-iter",
                             "range-for over unordered container '" + name +
                                 "' — iteration order is implementation-defined; iterate a "
                                 "sorted view or prove order-independence and allow"});
              break;
            }
          }
        }
      }
      at = find_token(file.code[li], "for", at + 1);
    }
  }
}

// --- rule: wall-clock --------------------------------------------------------

void check_wall_clock(const std::string& path, const CleanFile& file,
                      std::vector<Violation>& out) {
  static const char* kTokens[] = {"system_clock",  "steady_clock", "high_resolution_clock",
                                  "gettimeofday",  "clock_gettime", "localtime",
                                  "gmtime",        "mktime"};
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (const char* tok : kTokens) {
      if (find_token(line, tok) != std::string::npos) {
        out.push_back({path, li + 1, "wall-clock",
                       std::string("wall-clock source '") + tok +
                           "' — sim-domain timestamps must come from the simulation clock"});
      }
    }
    // `time(` only as std::time / ::time or the classic time(nullptr|NULL|0)
    // forms — a member or method named time() is fine.
    std::size_t at = find_token(line, "time");
    while (at != std::string::npos) {
      const std::size_t after = skip_spaces(line, at + 4);
      if (after < line.size() && line[after] == '(') {
        const char before = prev_nonspace(line, at);
        const bool qualified = before == ':' && (at < 2 || ident_before(line, at - 2) == "std" ||
                                                 ident_before(line, at - 2).empty());
        const std::size_t arg = skip_spaces(line, after + 1);
        const bool classic_arg = line.compare(arg, 7, "nullptr") == 0 ||
                                 line.compare(arg, 4, "NULL") == 0 ||
                                 line.compare(arg, 2, "0)") == 0;
        if (qualified || classic_arg) {
          out.push_back({path, li + 1, "wall-clock",
                         "wall-clock source 'time()' — sim-domain timestamps must come from "
                         "the simulation clock"});
        }
      }
      at = find_token(line, "time", at + 4);
    }
  }
}

// --- rule: rng ---------------------------------------------------------------

void check_rng(const std::string& path, const CleanFile& file, std::vector<Violation>& out) {
  static const char* kCalls[] = {"rand", "srand", "drand48", "lrand48", "random_shuffle"};
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    if (find_token(line, "random_device") != std::string::npos) {
      out.push_back({path, li + 1, "rng",
                     "'random_device' — all randomness must flow from the run's seeded "
                     "mt19937_64 streams"});
    }
    for (const char* call : kCalls) {
      std::size_t at = find_token(line, call);
      while (at != std::string::npos) {
        const std::size_t after = skip_spaces(line, at + std::string(call).size());
        const char before = prev_nonspace(line, at);
        const bool member = before == '.' || before == '>';
        if (after < line.size() && line[after] == '(' && !member) {
          out.push_back({path, li + 1, "rng",
                         std::string("'") + call +
                             "()' — all randomness must flow from the run's seeded "
                             "mt19937_64 streams"});
        }
        at = find_token(line, call, at + 1);
      }
    }
  }
}

// --- rule: pointer-key -------------------------------------------------------

void check_pointer_key(const std::string& path, const CleanFile& file,
                       std::vector<Violation>& out) {
  static const char* kContainers[] = {"map", "multimap", "set", "multiset", "unordered_map",
                                      "unordered_set"};
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    for (const char* kw : kContainers) {
      std::size_t at = find_token(file.code[li], kw);
      while (at != std::string::npos) {
        const std::string joined = join_lines(file.code, li, 2);
        const std::size_t open = skip_spaces(joined, at + std::string(kw).size());
        if (open < joined.size() && joined[open] == '<') {
          // First template argument: up to the first ',' or '>' at depth 1.
          int depth = 0;
          std::string key;
          for (std::size_t i = open; i < joined.size(); ++i) {
            if (joined[i] == '<') {
              if (++depth == 1) continue;
            }
            if (joined[i] == '>' && --depth == 0) break;
            if (joined[i] == ',' && depth == 1) break;
            key.push_back(joined[i]);
          }
          if (key.find('*') != std::string::npos) {
            out.push_back({path, li + 1, "pointer-key",
                           "container keyed on a pointer — pointer order is allocation "
                           "order and varies run to run; key by a stable id"});
          }
        }
        at = find_token(file.code[li], kw, at + 1);
      }
    }
  }
}

// --- rule: raw-trace ---------------------------------------------------------

bool raw_trace_exempt(const std::string& path) {
  // The recorder itself, and the coordinator's serial phases (routing /
  // migration planning run on the main thread and own the pid-0 track).
  return path.find("/obs/") != std::string::npos ||
         (path.size() >= 21 &&
          path.compare(path.size() - 21, 21, "fleet/coordinator.cpp") == 0);
}

void check_raw_trace(const std::string& path, const CleanFile& file,
                     std::vector<Violation>& out) {
  if (raw_trace_exempt(path)) return;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    if (line.find("->trace()") != std::string::npos ||
        line.find(".trace()") != std::string::npos) {
      out.push_back({path, li + 1, "raw-trace",
                     "direct trace() emission — region-domain events must go through the "
                     "per-region trace shards (trace_sink) to keep the parallel==serial "
                     "trace merge exact"});
    }
  }
}

// --- driver ------------------------------------------------------------------

std::vector<Violation> scan_lines(const std::string& path, const std::vector<std::string>& raw,
                                  const std::set<std::string>& extra_names) {
  const CleanFile file = clean_lines(raw);
  std::set<std::string> names = collect_unordered_names(file.code);
  names.insert(extra_names.begin(), extra_names.end());

  std::vector<Violation> found;
  check_unordered_iter(path, file, names, found);
  check_wall_clock(path, file, found);
  check_rng(path, file, found);
  check_pointer_key(path, file, found);
  check_raw_trace(path, file, found);

  std::vector<Violation> kept;
  for (Violation& v : found) {
    const std::size_t li = v.line - 1;
    const bool allowed = file.allows[li].count(v.rule) > 0 ||
                         (li > 0 && file.allows[li - 1].count(v.rule) > 0);
    if (!allowed) kept.push_back(std::move(v));
  }
  std::sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return kept;
}

std::vector<std::string> read_lines(const std::string& path, bool& ok) {
  std::ifstream in(path);
  ok = static_cast<bool>(in);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// A .cpp's members are usually declared in the sibling header, so the
/// unordered-variable names harvested there extend the .cpp scan.
std::set<std::string> sibling_header_names(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path p(path);
  if (p.extension() != ".cpp" && p.extension() != ".cc") return {};
  for (const char* ext : {".hpp", ".h"}) {
    fs::path header = p;
    header.replace_extension(ext);
    std::error_code ec;
    if (fs::exists(header, ec)) {
      bool ok = false;
      const std::vector<std::string> raw = read_lines(header.string(), ok);
      if (ok) return collect_unordered_names(clean_lines(raw).code);
    }
  }
  return {};
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

int scan_paths(const std::vector<std::string>& args) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(arg, ec)) {
      files.push_back(arg);
    } else {
      std::cerr << "error: no such file or directory: " << arg << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const std::string& path : files) {
    bool ok = false;
    const std::vector<std::string> raw = read_lines(path, ok);
    if (!ok) {
      std::cerr << "error: cannot read " << path << "\n";
      return 2;
    }
    for (const Violation& v : scan_lines(path, raw, sibling_header_names(path))) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
      ++total;
    }
  }
  std::cout << "det_lint: " << files.size() << " file(s), " << total << " violation(s)\n";
  return total == 0 ? 0 : 1;
}

// --- self-test ---------------------------------------------------------------

struct Fixture {
  const char* name;
  const char* path;  ///< virtual path (exercises path-based exemptions)
  const char* content;
  std::vector<std::pair<std::size_t, const char*>> expected;  ///< (line, rule)
};

const std::vector<Fixture>& fixtures() {
  static const std::vector<Fixture> kFixtures = {
      {"unordered-iter fires on range-for over an unordered local",
       "fixture/core/a.cpp",
       "#include <unordered_map>\n"
       "void f() {\n"
       "  std::unordered_map<int, double> credit;\n"
       "  double sum = 0.0;\n"
       "  for (const auto& [id, c] : credit) sum += c;\n"
       "}\n",
       {{5, "unordered-iter"}}},
      {"unordered-iter respects an allow comment on the line above",
       "fixture/core/b.cpp",
       "void f() {\n"
       "  std::unordered_set<int> seen;\n"
       "  // Order-independent: results feed a commutative count.\n"
       "  // det_lint: allow(unordered-iter)\n"
       "  for (int id : seen) use(id);\n"
       "}\n",
       {}},
      {"unordered-iter ignores ordered containers and lookups",
       "fixture/core/c.cpp",
       "void f() {\n"
       "  std::vector<int> jobs;\n"
       "  std::unordered_map<int, int> index;\n"
       "  for (int j : jobs) touch(index[j]);\n"
       "}\n",
       {}},
      {"unordered-iter sees members declared across a two-line header decl",
       "fixture/core/d.hpp",
       "class State {\n"
       "  void walk() {\n"
       "    for (const auto& [k, v] : lineage_) use(v);\n"
       "  }\n"
       "  std::vector<std::unordered_map<int, int>>\n"
       "      lineage_;\n"
       "};\n",
       {{3, "unordered-iter"}}},
      {"wall-clock fires on clocks and classic time() forms only",
       "fixture/core/e.cpp",
       "void f(Metrics& m) {\n"
       "  auto a = std::chrono::system_clock::now();\n"
       "  auto b = std::time(nullptr);\n"
       "  auto c = time(0);\n"
       "  auto d = m.time(3);\n"
       "  auto e = snapshot_time(3);\n"
       "}\n",
       {{2, "wall-clock"}, {3, "wall-clock"}, {4, "wall-clock"}}},
      {"wall-clock allows the profiler's steady_clock when annotated",
       "fixture/core/f.cpp",
       "// Wall-time profile, pid 99.  det_lint: allow(wall-clock)\n"
       "auto t0 = std::chrono::steady_clock::now();\n",
       {}},
      {"rng fires on rand()/random_device but not members named rand",
       "fixture/core/g.cpp",
       "void f(Stream& s) {\n"
       "  int a = rand();\n"
       "  std::random_device rd;\n"
       "  int b = s.rand();\n"
       "}\n",
       {{2, "rng"}, {3, "rng"}}},
      {"rng fires on ambient randomness in fault-draw code",
       "fixture/fault/k.cpp",
       "bool draw_blackout(double rate_per_day, double dt_days) {\n"
       "  return drand48() < rate_per_day * dt_days;\n"
       "}\n",
       {{2, "rng"}}},
      {"rng respects an allow comment on a sanctioned fault draw",
       "fixture/fault/l.cpp",
       "bool draw_blackout() {\n"
       "  // Seeded harness shim, not sim randomness.  det_lint: allow(rng)\n"
       "  return drand48() < 0.5;\n"
       "}\n",
       {}},
      {"pointer-key fires on pointer keys, not pointer values",
       "fixture/core/h.hpp",
       "struct S {\n"
       "  std::map<const Node*, int> order_;\n"
       "  std::map<int, Node*> owner_;\n"
       "  std::set<int> ids_;\n"
       "};\n",
       {{2, "pointer-key"}}},
      {"raw-trace fires outside obs/ and honors the path exemptions",
       "fixture/core/i.cpp",
       "void f(Recorder* r) {\n"
       "  r->trace().instant(\"x\");\n"
       "}\n",
       {{2, "raw-trace"}}},
      {"raw-trace is exempt inside src/obs/",
       "fixture/src/obs/j.cpp",
       "void f(Recorder* r) {\n"
       "  r->trace().instant(\"x\");\n"
       "}\n",
       {}},
      {"rules ignore comments and string literals",
       "fixture/core/k.cpp",
       "void f() {\n"
       "  // rand() and system_clock in prose are fine\n"
       "  log(\"rand() via system_clock\");\n"
       "}\n",
       {}},
  };
  return kFixtures;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

int self_test() {
  std::size_t failed = 0;
  for (const Fixture& fx : fixtures()) {
    const std::vector<Violation> got = scan_lines(fx.path, split_lines(fx.content), {});
    bool ok = got.size() == fx.expected.size();
    if (ok) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ok = ok && got[i].line == fx.expected[i].first && got[i].rule == fx.expected[i].second;
      }
    }
    std::cout << (ok ? "PASS" : "FAIL") << ": " << fx.name << "\n";
    if (!ok) {
      ++failed;
      std::cout << "  expected:";
      for (const auto& [line, rule] : fx.expected) std::cout << " " << line << ":" << rule;
      std::cout << "\n  got:     ";
      for (const Violation& v : got) std::cout << " " << v.line << ":" << v.rule;
      std::cout << "\n";
    }
  }
  std::cout << "det_lint self-test: " << (fixtures().size() - failed) << "/" << fixtures().size()
            << " fixtures passed\n";
  return failed == 0 ? 0 : 1;
}

void print_usage() {
  std::cout << "det_lint — determinism lint for simulator sources\n\n"
               "usage:\n"
               "  det_lint PATH...     scan files/directories; exit 1 on violations\n"
               "  det_lint --self-test run embedded rule fixtures\n"
               "  det_lint --help      this text\n\n"
               "rules: unordered-iter, wall-clock, rng, pointer-key, raw-trace\n"
               "suppress with `// det_lint: allow(rule)` on or above the line\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string first = argv[1];
  if (first == "--help" || first == "-h") {
    print_usage();
    return 0;
  }
  if (first == "--self-test") return self_test();
  return scan_paths({argv + 1, argv + argc});
}
