// ABL-DL — Restructuring the conference calendar (Sec. III).
//
// "can we structure deadlines to spread out energy utilization and compute
// demand to benefit energy efficiency? ... (1) spread deadlines more
// uniformly throughout the year, (2) concentrate deadlines in the
// winter/spring months ..., or (3) abolish fixed deadlines in favor of
// rolling submissions."
//
// Each calendar drives a full 2021 twin run with identical seeds. Expected
// shape: the winter-shifted and rolling calendars cut annual CO2 and peak
// monthly power relative to the status quo, with uniform in between.

#include <iostream>
#include <memory>
#include <mutex>

#include "core/datacenter.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace greenhpc;

namespace {

struct Outcome {
  double energy_mwh = 0.0;
  double co2_t = 0.0;
  double co2_per_gpuh = 0.0;
  double peak_month_kw = 0.0;
  double summer_power_kw = 0.0;  // Jun-Aug mean
  double completed_kgpuh = 0.0;
};

/// Mean demand multiplier a calendar induces over 2021 — used to normalize
/// total annual compute across calendars ("if the same amount of compute is
/// to be spent throughout a representative year regardless", Sec. III).
double mean_demand_factor(const workload::DeadlineCalendar& calendar) {
  const workload::DemandModulator modulator(calendar);
  const util::TimePoint start = util::to_timepoint(util::CivilDate{2021, 1, 1});
  const util::TimePoint end = util::to_timepoint(util::CivilDate{2022, 1, 1});
  double total = 0.0;
  std::size_t n = 0;
  for (util::TimePoint t = start; t < end; t += util::hours(6)) {
    total += modulator.deadline_factor(t);
    ++n;
  }
  return total / static_cast<double>(n);
}

Outcome run_calendar(const workload::DeadlineCalendar& calendar, double demand_norm,
                     std::uint64_t seed) {
  const util::TimePoint start = util::to_timepoint(util::CivilDate{2021, 1, 1});
  const util::TimePoint end = util::to_timepoint(util::CivilDate{2022, 1, 1});

  core::DatacenterConfig config;
  config.start = start - util::days(7);
  config.seed = seed;
  core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
  workload::ArrivalConfig arrivals;
  arrivals.base_rate_per_hour *= demand_norm;  // equalize annual compute
  dc.attach_arrivals(arrivals, calendar);
  dc.run_until(start);
  dc.run_until(end);

  Outcome out;
  const core::RunSummary s = dc.summary();
  out.energy_mwh = s.grid_totals.energy.megawatt_hours();
  out.co2_t = s.grid_totals.carbon.metric_tons();
  out.completed_kgpuh = s.completed_gpu_hours / 1000.0;
  out.co2_per_gpuh = s.grid_totals.carbon.kilograms() / std::max(1.0, s.completed_gpu_hours);
  const auto monthly = dc.monthly_power().monthly();
  double peak = 0.0, summer = 0.0;
  int summer_n = 0;
  for (const auto& m : monthly) {
    if (m.month.year != 2021) continue;
    peak = std::max(peak, m.time_weighted_mean);
    if (m.month.month >= 6 && m.month.month <= 8) {
      summer += m.time_weighted_mean;
      ++summer_n;
    }
  }
  out.peak_month_kw = peak;
  out.summer_power_kw = summer_n > 0 ? summer / summer_n : 0.0;
  return out;
}

}  // namespace

int main() {
  util::print_banner(std::cout, "ABL-DL: deadline restructuring strategies (2021)");

  const workload::DeadlineCalendar standard = workload::DeadlineCalendar::standard();
  const double standard_factor = mean_demand_factor(standard);

  // Effects are percent-scale, so each calendar runs a small paired-seed
  // ensemble (same seeds across calendars share the weather/price/grid
  // realization); the table reports ensemble means.
  const std::vector<std::uint64_t> seeds = {42, 1337, 9001};
  const std::vector<std::pair<workload::DeadlineCalendar, const char*>> calendars = {
      {standard, "status quo (Table I)"},
      {standard.spread_uniform(), "(1) uniform spread"},
      {standard.concentrate_winter(), "(2) winter/spring shift"},
      {standard.rolling(), "(3) rolling submissions"}};

  std::vector<Outcome> means(calendars.size());
  util::parallel_for(calendars.size() * seeds.size(), [&](std::size_t i) {
    const std::size_t c = i / seeds.size();
    const std::size_t s = i % seeds.size();
    const double norm = standard_factor / mean_demand_factor(calendars[c].first);
    const Outcome o = run_calendar(calendars[c].first, norm, seeds[s]);
    // Accumulation is safe: each (c, s) writes disjoint fields via a mutex-free
    // reduction after the fact would race; instead store per-run results.
    static std::mutex mu;
    const std::scoped_lock lock(mu);
    Outcome& m = means[c];
    const double k = 1.0 / static_cast<double>(seeds.size());
    m.energy_mwh += k * o.energy_mwh;
    m.co2_t += k * o.co2_t;
    m.co2_per_gpuh += k * o.co2_per_gpuh;
    m.peak_month_kw += k * o.peak_month_kw;
    m.summer_power_kw += k * o.summer_power_kw;
    m.completed_kgpuh += k * o.completed_kgpuh;
  });

  util::Table table({"calendar", "energy (MWh)", "CO2 (t)", "kgCO2/GPU-h", "peak month (kW)",
                     "Jun-Aug power (kW)", "completed kGPU-h", "CO2/GPU-h saved %"});
  const Outcome& status_quo = means[0];
  const double eff_uniform = means[1].co2_per_gpuh;
  const double eff_winter = means[2].co2_per_gpuh;
  const double eff_rolling = means[3].co2_per_gpuh;
  for (std::size_t c = 0; c < calendars.size(); ++c) {
    const Outcome& o = means[c];
    table.add(calendars[c].second, util::fmt_fixed(o.energy_mwh, 1),
              util::fmt_fixed(o.co2_t, 1), util::fmt_fixed(o.co2_per_gpuh, 4),
              util::fmt_fixed(o.peak_month_kw, 1), util::fmt_fixed(o.summer_power_kw, 1),
              util::fmt_fixed(o.completed_kgpuh, 1),
              util::fmt_fixed(100.0 * (1.0 - o.co2_per_gpuh / status_quo.co2_per_gpuh), 2));
  }
  std::cout << table;
  std::cout << "\n(ensemble of " << seeds.size() << " paired seeds per calendar)\n";

  (void)eff_uniform;
  (void)eff_rolling;
  const bool shape_ok = eff_winter <= status_quo.co2_per_gpuh &&
                        means[2].summer_power_kw < status_quo.summer_power_kw - 10.0 &&
                        means[2].peak_month_kw < status_quo.peak_month_kw - 10.0;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": the deliberate winter/spring shift (option 2) cuts peak and\n"
               "          summer power ~20 kW and holds CO2/GPU-h at-or-below status quo.\n"
               "          Finding: options (1) uniform and (3) rolling do NOT automatically\n"
               "          help — the real 2021 calendar already concentrates deadlines in\n"
               "          the green spring (Fig. 2), so flattening demand forfeits that\n"
               "          alignment. Restructuring must target the grid, not just smooth\n"
               "          the load — sharpening the paper's Sec. III discussion.\n";
  return shape_ok ? 0 : 1;
}
