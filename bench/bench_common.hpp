#pragma once
// Shared helpers for the figure benches: the paper's observation window
// (Jan 2020 - Dec 2021) run on the reference twin, plus month-of-year
// averaging (Figs. 2-4 plot one seasonal cycle averaged over 2020-21).

#include <array>
#include <memory>
#include <vector>

#include "core/datacenter.hpp"
#include "sched/scheduler.hpp"
#include "util/calendar.hpp"

namespace greenhpc::bench {

inline constexpr util::MonthKey kWindowStart{2020, 1};
inline constexpr int kWindowMonths = 24;

/// Runs the reference twin over the paper's Jan-2020..Dec-2021 window.
inline std::unique_ptr<core::Datacenter> run_reference_window(std::uint64_t seed = 42) {
  auto dc = core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(),
                                            seed);
  dc->run_until(util::to_timepoint(util::CivilDate{2022, 1, 1}));
  return dc;
}

/// Collapses a 24-month series into month-of-year means (index 0 = January),
/// the aggregation Figs. 2-4 use ("monthly average ... 2020-21").
inline std::array<double, 12> month_of_year_means(const std::vector<util::MonthKey>& months,
                                                  const std::vector<double>& values) {
  std::array<double, 12> sums{};
  std::array<int, 12> counts{};
  for (std::size_t i = 0; i < months.size(); ++i) {
    const auto m = static_cast<std::size_t>(months[i].month - 1);
    sums[m] += values[i];
    ++counts[m];
  }
  std::array<double, 12> means{};
  for (std::size_t m = 0; m < 12; ++m)
    means[m] = counts[m] > 0 ? sums[m] / counts[m] : 0.0;
  return means;
}

}  // namespace greenhpc::bench
