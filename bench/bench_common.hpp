#pragma once
// Shared helpers for the figure benches: the paper's observation window
// (Jan 2020 - Dec 2021) run on the reference twin, plus month-of-year
// averaging (Figs. 2-4 plot one seasonal cycle averaged over 2020-21), and
// the BENCH_PERF.json read/merge/write helpers the perf benches share.

#include <array>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/datacenter.hpp"
#include "sched/scheduler.hpp"
#include "util/calendar.hpp"

namespace greenhpc::bench {

inline constexpr util::MonthKey kWindowStart{2020, 1};
inline constexpr int kWindowMonths = 24;

/// Runs the reference twin over the paper's Jan-2020..Dec-2021 window.
inline std::unique_ptr<core::Datacenter> run_reference_window(std::uint64_t seed = 42) {
  auto dc = core::make_reference_datacenter(std::make_unique<sched::EasyBackfillScheduler>(),
                                            seed);
  dc->run_until(util::to_timepoint(util::CivilDate{2022, 1, 1}));
  return dc;
}

/// Collapses a 24-month series into month-of-year means (index 0 = January),
/// the aggregation Figs. 2-4 use ("monthly average ... 2020-21").
inline std::array<double, 12> month_of_year_means(const std::vector<util::MonthKey>& months,
                                                  const std::vector<double>& values) {
  std::array<double, 12> sums{};
  std::array<int, 12> counts{};
  for (std::size_t i = 0; i < months.size(); ++i) {
    const auto m = static_cast<std::size_t>(months[i].month - 1);
    sums[m] += values[i];
    ++counts[m];
  }
  std::array<double, 12> means{};
  for (std::size_t m = 0; m < 12; ++m)
    means[m] = counts[m] > 0 ? sums[m] / counts[m] : 0.0;
  return means;
}

// --- BENCH_PERF.json ---------------------------------------------------------
//
// The machine-readable perf trajectory: a flat {"metric": number} object that
// perf_simulator and experiment_throughput both merge their measurements
// into, so one artifact carries the whole picture (steps/sec single-site,
// fleet steps/sec with forecast+migration on, replicas/sec). Numbers are
// machine-dependent; compare within one machine (or one CI runner class).

/// Parses a flat {"key": number, ...} JSON object. Tolerant of whitespace and
/// ordering; anything unparseable yields an empty map (the benches then start
/// a fresh file rather than failing). Non-number values — the nested
/// "manifest" provenance object and its strings — are skipped wholesale, so
/// manifest keys never leak into the metric map.
inline std::map<std::string, double> read_perf_json(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) return out;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    std::size_t colon = key_end + 1;
    while (colon < text.size() && std::isspace(static_cast<unsigned char>(text[colon]))) ++colon;
    if (colon >= text.size() || text[colon] != ':') {
      // Not a key (a string value, or inside a skipped object): move on.
      pos = key_end + 1;
      continue;
    }
    ++colon;
    while (colon < text.size() && std::isspace(static_cast<unsigned char>(text[colon]))) ++colon;
    if (colon < text.size() && (text[colon] == '{' || text[colon] == '[')) {
      // Nested value (the manifest object): skip it bracket-balanced,
      // string-aware, so its members never read as top-level metrics.
      int depth = 0;
      bool in_string = false;
      while (colon < text.size()) {
        const char c = text[colon++];
        if (in_string) {
          if (c == '\\') ++colon;
          else if (c == '"') in_string = false;
          continue;
        }
        if (c == '"') in_string = true;
        if (c == '{' || c == '[') ++depth;
        if ((c == '}' || c == ']') && --depth == 0) break;
      }
      pos = colon;
      continue;
    }
    const char* start = text.c_str() + colon;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end != start) out[key] = value;
    pos = key_end + 1;
  }
  return out;
}

/// Merges `updates` into the flat JSON at `path` (existing keys the caller
/// does not measure are preserved, so the two perf binaries can share one
/// artifact) and rewrites it with sorted keys. `manifest_json`, when
/// non-empty, must be a rendered JSON object (obs::RunManifest::to_json())
/// and is embedded as a leading "manifest" key; a manifest already in the
/// file is replaced (read_perf_json drops it), never duplicated.
inline void merge_perf_json(const std::string& path,
                            const std::map<std::string, double>& updates,
                            const std::string& manifest_json = {}) {
  std::map<std::string, double> merged = read_perf_json(path);
  for (const auto& [key, value] : updates) merged[key] = value;
  std::ofstream out(path);
  out << "{\n";
  if (!manifest_json.empty()) {
    out << "  \"manifest\": " << manifest_json;
    if (!merged.empty()) out << ",";
    out << "\n";
  }
  std::size_t i = 0;
  for (const auto& [key, value] : merged) {
    out << "  \"" << key << "\": " << value;
    if (++i < merged.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
}

}  // namespace greenhpc::bench
