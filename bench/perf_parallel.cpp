// PERF2 — Thread-pool ensemble scaling (google-benchmark).
//
// greenhpc's Monte-Carlo layers (stress ensembles, optimizer sweeps) are
// replica-parallel; this tracks parallel_for overhead and scaling across
// worker counts.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace greenhpc;

namespace {

double simulate_replica(std::uint64_t seed) {
  // A small CPU-bound kernel standing in for one month-scale replica.
  util::Rng rng(seed);
  double acc = 0.0;
  for (int i = 0; i < 40000; ++i) acc += std::sqrt(rng.uniform01() + 1e-9);
  return acc;
}

void BM_SerialEnsemble(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t r = 0; r < replicas; ++r) total += simulate_replica(r);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(replicas));
}
BENCHMARK(BM_SerialEnsemble)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ParallelEnsemble(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t replicas = 16;
  util::ThreadPool pool(workers);
  for (auto _ : state) {
    std::atomic<double> total{0.0};
    util::parallel_for(pool, replicas, [&total](std::size_t r) {
      const double v = simulate_replica(r);
      double expected = total.load();
      while (!total.compare_exchange_weak(expected, expected + v)) {
      }
    });
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(replicas));
  state.SetLabel(std::to_string(workers) + " workers");
}
BENCHMARK(BM_ParallelEnsemble)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ParallelForOverhead(benchmark::State& state) {
  util::ThreadPool pool(2);
  for (auto _ : state) {
    std::atomic<std::uint64_t> count{0};
    util::parallel_for(pool, 1000, [&count](std::size_t) { count.fetch_add(1); });
    benchmark::DoNotOptimize(count.load());
  }
}
BENCHMARK(BM_ParallelForOverhead);

}  // namespace
