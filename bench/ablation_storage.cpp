// ABL-STOR — Battery arbitrage (Sec. II-A strategy 2).
//
// "...or (2) store that energy to help offset energy consumption during
// times where the fuel mix is less sustainably sourced."
//
// Expected shape: cost and carbon fall as battery capacity grows, with
// diminishing returns; the forecast-driven policy does at least as well as
// the myopic threshold policy. Also exercises the monthly PurchasePlanner
// (the paper's month-scale framing of both strategies).

#include <iostream>
#include <memory>

#include "core/datacenter.hpp"
#include "forecast/models.hpp"
#include "grid/purchase_planner.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

struct Outcome {
  double cost_usd = 0.0;
  double co2_t = 0.0;
  double cycles = 0.0;
};

Outcome run_with_battery(double capacity_kwh, bool forecast_policy) {
  const util::MonthSpan start_span = util::month_span({2021, 5});
  const util::MonthSpan end_span = util::month_span({2021, 7});

  core::DatacenterConfig config;
  config.start = start_span.start - util::days(7);
  if (capacity_kwh > 0.0) {
    grid::BatteryConfig battery;
    battery.capacity = util::kilowatt_hours(capacity_kwh);
    battery.max_charge = util::kilowatts(capacity_kwh / 4.0);
    battery.max_discharge = util::kilowatts(capacity_kwh / 4.0);
    config.battery = battery;
  }

  core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());

  if (capacity_kwh > 0.0) {
    if (forecast_policy) {
      // Forecast the next 24 hours of prices with the price model itself at
      // hourly resolution (a near-oracle; a fitted model is evaluated in the
      // forecast tests). The policy only sees the returned vector.
      const grid::LmpPriceModel* prices = &dc.prices();
      auto forecast_fn = [prices](util::TimePoint now) {
        std::vector<double> out;
        out.reserve(24);
        for (int h = 0; h < 24; ++h)
          out.push_back(prices->price_at(now + util::hours(h)).usd_per_mwh());
        return out;
      };
      grid::ForecastArbitragePolicy::Params params;
      params.rate = util::kilowatts(capacity_kwh / 4.0);
      dc.attach_battery_policy(
          std::make_unique<grid::ForecastArbitragePolicy>(forecast_fn, params));
    } else {
      grid::ThresholdArbitragePolicy::Params params;
      params.rate = util::kilowatts(capacity_kwh / 4.0);
      dc.attach_battery_policy(std::make_unique<grid::ThresholdArbitragePolicy>(params));
    }
  }

  dc.run_until(start_span.start);
  dc.run_until(end_span.end);

  Outcome out;
  out.cost_usd = dc.summary().grid_totals.cost.dollars();
  out.co2_t = dc.summary().grid_totals.carbon.metric_tons();
  if (const grid::BatteryStorage* b = dc.battery()) out.cycles = b->equivalent_cycles();
  return out;
}

}  // namespace

int main() {
  util::print_banner(std::cout, "ABL-STOR: battery arbitrage sweep (May-Jul 2021)");

  const Outcome base = run_with_battery(0.0, false);
  std::cout << "no battery: cost $" << util::fmt_fixed(base.cost_usd, 0) << ", CO2 "
            << util::fmt_fixed(base.co2_t, 1) << " t\n\n";

  util::Table table({"capacity (kWh)", "policy", "cost $", "cost saved %", "CO2 (t)",
                     "CO2 saved %", "full cycles"});
  double best_threshold_saving = 0.0, best_forecast_saving = 0.0;
  for (double cap : {250.0, 500.0, 1000.0, 2000.0}) {
    for (bool forecast : {false, true}) {
      const Outcome o = run_with_battery(cap, forecast);
      const double cost_saving = 100.0 * (base.cost_usd - o.cost_usd) / base.cost_usd;
      const double co2_saving = 100.0 * (base.co2_t - o.co2_t) / base.co2_t;
      if (forecast) best_forecast_saving = std::max(best_forecast_saving, cost_saving);
      else best_threshold_saving = std::max(best_threshold_saving, cost_saving);
      table.add(util::fmt_fixed(cap, 0), forecast ? "forecast" : "threshold",
                util::fmt_fixed(o.cost_usd, 0), util::fmt_fixed(cost_saving, 2),
                util::fmt_fixed(o.co2_t, 2), util::fmt_fixed(co2_saving, 2),
                util::fmt_fixed(o.cycles, 1));
    }
  }
  std::cout << table;

  // Month-scale view: the PurchasePlanner on a flat annual demand profile.
  std::cout << "\nMonthly purchase planning (Sec. II-A strategies, 2021):\n\n";
  const grid::FuelMixModel mix;
  const grid::CarbonIntensityModel carbon(&mix);
  const grid::LmpPriceModel prices(grid::PriceConfig{}, &mix);
  const grid::PurchasePlanner planner(&prices, &carbon, &mix);
  const std::vector<util::Energy> demand(12, util::megawatt_hours(230.0));
  const auto baseline = planner.make_baseline({2021, 1}, demand);
  const auto shift = planner.plan_load_shift(baseline, 0.25, 2, 0.20);
  // Storage at month scale only pays off in carbon when round-trip losses
  // stay below the monthly intensity spread (<= ~11% on this grid), so we
  // model a high-efficiency bank.
  const auto storage95 = planner.plan_storage(baseline, util::megawatt_hours(40.0), 3, 0.95);
  const auto storage90 = planner.plan_storage(baseline, util::megawatt_hours(40.0), 3, 0.90);

  util::Table plans({"strategy", "cost saved %", "carbon saved %"});
  plans.add("(1) shift load to green months", util::fmt_fixed(shift.cost_saving_pct(), 2),
            util::fmt_fixed(shift.carbon_saving_pct(), 2));
  plans.add("(2) storage, 95% round trip", util::fmt_fixed(storage95.cost_saving_pct(), 2),
            util::fmt_fixed(storage95.carbon_saving_pct(), 2));
  plans.add("(2) storage, 90% round trip", util::fmt_fixed(storage90.cost_saving_pct(), 2),
            util::fmt_fixed(storage90.carbon_saving_pct(), 2));
  std::cout << plans;

  const bool shape_ok = best_forecast_saving >= best_threshold_saving - 0.05 &&
                        best_forecast_saving > 0.0 && shift.carbon_saving_pct() > 0.0 &&
                        storage95.carbon_saving_pct() >= storage90.carbon_saving_pct();
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": cost savings grow with capacity and forecast >= threshold.\n"
               "          Finding: on this gas-marginal grid, intra-day battery arbitrage\n"
               "          saves money but round-trip losses wash out its carbon benefit;\n"
               "          carbon gains need load shifting (strategy 1) or storage whose\n"
               "          losses undercut the monthly intensity spread — exactly the\n"
               "          \"additional fixed costs\" caveat the paper raises in Sec. II-A.\n";
  return shape_ok ? 0 : 1;
}
