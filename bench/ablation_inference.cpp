// ABL-INF — Inference vs. training lifecycle energy (Sec. IV-B).
//
// "the few estimates, where available, put inference at 90% of production ML
// infrastructure costs and 80%-90% of energy costs ... AWS reports p3 GPU
// instances at only 10%-30% utilization and even Google's TPUs exhibit a
// utilization of 28% on average."
//
// Expected shape: a production model's serving fleet lands in the 10-30%
// average-utilization band, and over a one-year production life inference
// accounts for ~80-90% of lifecycle energy.

#include <iostream>

#include "telemetry/lifecycle.hpp"
#include "util/table.hpp"
#include "workload/inference.hpp"
#include "workload/training_model.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "ABL-INF: training vs inference lifecycle energy");

  // Training: a 1.3B-parameter model, 8x V100 (Sec. IV-A arithmetic).
  workload::TrainingRunSpec training;
  training.name = "prod-model-1.3B";
  training.parameters = 1.3e9;
  training.tokens = 3.0e10;
  training.gpus = 8;
  const workload::TrainingRunCost train_cost = workload::TrainingRunModel::cost(
      training, util::usd_per_mwh(32.0), util::kg_per_kwh(0.28));

  std::cout << "Training run (" << training.name << "):\n";
  util::Table ttable({"metric", "value"});
  ttable.add("total FLOPs", util::fmt_sci(train_cost.total_flops, 3));
  ttable.add("GPU-hours", util::fmt_fixed(train_cost.gpu_hours, 0));
  ttable.add("wall clock (days)", util::fmt_fixed(train_cost.wall_clock.days(), 1));
  ttable.add("facility energy (kWh)", util::fmt_fixed(train_cost.facility_energy.kilowatt_hours(), 0));
  ttable.add("cost ($)", util::fmt_fixed(train_cost.cost.dollars(), 0));
  ttable.add("CO2 (kg)", util::fmt_fixed(train_cost.carbon.kilograms(), 0));
  std::cout << ttable;

  // Hyper-parameter search multiplies training (Sec. IV-A redundancy): x10.
  const double dev_multiplier = 10.0;

  // Serving: one year in production, peak-provisioned fleet.
  const workload::InferenceFleet fleet;
  const util::TimePoint start = util::to_timepoint(util::CivilDate{2021, 1, 1});
  const util::TimePoint end = util::to_timepoint(util::CivilDate{2022, 1, 1});
  const workload::InferencePeriodCost serving = fleet.serve(start, end);

  std::cout << "\nServing fleet (one production year):\n";
  util::Table stable({"metric", "value"});
  stable.add("provisioned replicas", util::fmt_fixed(serving.replicas, 0));
  stable.add("average utilization %", util::fmt_fixed(100.0 * serving.average_utilization, 1));
  stable.add("queries served (billions)", util::fmt_fixed(serving.queries_served / 1e9, 2));
  stable.add("facility energy (kWh)", util::fmt_fixed(serving.facility_energy.kilowatt_hours(), 0));
  stable.add("Wh per 1k queries", util::fmt_fixed(serving.energy_per_1k_queries.kilowatt_hours() * 1000.0, 1));
  std::cout << stable;

  // Book everything into the Sec. IV-B lifecycle ledger and read the split
  // back from it.
  telemetry::ModelLifecycle ledger(training.name);
  ledger.book(telemetry::LifecyclePhase::kDevelopment,
              train_cost.facility_energy * (dev_multiplier - 1.0),
              train_cost.cost * (dev_multiplier - 1.0),
              train_cost.carbon * (dev_multiplier - 1.0),
              train_cost.gpu_hours * (dev_multiplier - 1.0));
  ledger.book(telemetry::LifecyclePhase::kTraining, train_cost.facility_energy, train_cost.cost,
              train_cost.carbon, train_cost.gpu_hours);
  ledger.book(telemetry::LifecyclePhase::kServing, serving.facility_energy,
              serving.facility_energy * util::usd_per_mwh(32.0),
              serving.facility_energy * util::kg_per_kwh(0.28),
              serving.replicas * 8766.0);
  const double inference_share = 100.0 * ledger.inference_share();

  std::cout << "\nLifecycle ledger (development incl. " << util::fmt_fixed(dev_multiplier, 0)
            << "x sweep redundancy vs one serving year):\n\n"
            << ledger.report();

  const bool util_band = serving.average_utilization >= 0.10 && serving.average_utilization <= 0.35;
  const bool share_band = inference_share >= 70.0 && inference_share <= 95.0;
  std::cout << "\n[verdict] " << (util_band && share_band ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": serving utilization in the 10-30% band; inference ~80-90% of lifecycle\n";
  return util_band && share_band ? 0 : 1;
}
