// ABL-MECH — Incentives, adverse selection, and the two-part mechanism
// (Sec. II-C).
//
// Part 1: free queue choice. Expected shape: with strategic users the fast
// (uncapped) queue clogs — clog factor well above 1, green queues near-idle,
// and the advertised energy savings evaporate relative to a truthful
// population.
// Part 2: the two-part mechanism (base cap + cap-for-GPUs menu). Expected
// shape: high participation, mean user speedup >= 1, and fleet energy per
// work strictly below the base-cap-only and uncapped counterfactuals.

#include <iostream>

#include "mechanism/queues.hpp"
#include "mechanism/two_part.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "ABL-MECH: queue self-selection and the two-part mechanism");

  util::Rng rng(2022);
  const workload::PopulationConfig pop_config{.user_count = 400, .strategic_fraction = 0.35};
  util::Rng pop_rng(7);
  const workload::UserPopulation population = workload::UserPopulation::generate(pop_config, pop_rng);

  const power::GpuPowerModel gpu_model;

  // --- Part 1: segmented queues with free self-selection -------------------
  std::vector<mechanism::QueueSpec> queues = {
      {"fast (uncapped)", util::watts(250.0), 0.40, 0.0},
      {"standard (205 W)", util::watts(205.0), 0.35, 0.5},
      {"green (165 W)", util::watts(165.0), 0.25, 1.0},
  };
  const mechanism::QueueChoiceSimulator simulator(queues, gpu_model);

  const mechanism::SelectionResult honest = simulator.equilibrium(population, rng, 1.0);
  const mechanism::SelectionResult mixed = simulator.equilibrium(population, rng, -1.0);

  auto print_selection = [](const char* label, const mechanism::SelectionResult& r) {
    std::cout << label << "\n";
    util::Table t({"queue", "capacity share", "load share", "utilization", "wait"});
    for (const mechanism::QueueOutcome& q : r.queues) {
      t.add(q.spec.name, util::fmt_fixed(q.spec.resource_share, 2),
            util::fmt_fixed(q.load_share, 3), util::fmt_fixed(q.utilization, 2),
            util::fmt_fixed(q.expected_wait, 2));
    }
    std::cout << t;
    std::cout << "  fast-queue utilization: " << util::fmt_fixed(r.fast_queue_utilization, 2)
              << " | clog factor: " << util::fmt_fixed(r.clog_factor, 2)
              << " | idle capacity: " << util::fmt_fixed(100.0 * r.idle_capacity_share, 1)
              << "% | fleet energy/work: " << util::fmt_fixed(r.energy_per_work, 3) << "\n\n";
  };
  print_selection("Truthful population (stated preferences honored):", honest);
  print_selection("Mixed population (35% strategic, paper's adverse selection):", mixed);

  // --- Part 2: the two-part mechanism ---------------------------------------
  const util::Power base_cap = gpu_model.optimal_cap(0.03);
  const auto menu = mechanism::TwoPartMechanism::default_menu(gpu_model, base_cap);
  const mechanism::TwoPartMechanism two_part(gpu_model, base_cap, menu, 0.20);
  const mechanism::MechanismOutcome outcome = two_part.run(population, rng);

  std::cout << "Two-part mechanism (fixed base cap " << util::fmt_fixed(base_cap.watts(), 0)
            << " W + cap-for-GPUs menu):\n";
  util::Table menu_table({"option", "cap (W)", "GPU multiplier", "user speedup",
                          "energy/work vs base"});
  for (std::size_t k = 0; k < menu.size(); ++k) {
    const double speedup = menu[k].gpu_multiplier * gpu_model.throughput_factor(menu[k].cap) /
                           gpu_model.throughput_factor(base_cap);
    menu_table.add(static_cast<int>(k + 1), util::fmt_fixed(menu[k].cap.watts(), 0),
                   util::fmt_fixed(menu[k].gpu_multiplier, 3), util::fmt_fixed(speedup, 3),
                   util::fmt_fixed(gpu_model.relative_energy_per_work(menu[k].cap) /
                                       gpu_model.relative_energy_per_work(base_cap),
                                   3));
  }
  std::cout << menu_table;

  std::cout << "\n  participation: " << util::fmt_fixed(100.0 * outcome.participation_rate, 1)
            << "% | mean speedup: " << util::fmt_fixed(outcome.mean_speedup, 3)
            << " | energy vs base-cap fleet: " << util::fmt_fixed(outcome.energy_vs_base, 3)
            << " | vs uncapped fleet: " << util::fmt_fixed(outcome.energy_vs_uncapped, 3)
            << "\n  headroom used: " << util::fmt_fixed(100.0 * outcome.headroom_used, 1) << "%\n";

  const bool adverse_selection_shown =
      mixed.fast_queue_utilization > honest.fast_queue_utilization &&
      mixed.energy_per_work > honest.energy_per_work;
  const bool two_part_works = outcome.participation_rate > 0.2 && outcome.mean_speedup >= 1.0 &&
                              outcome.energy_vs_base < 1.0 && outcome.energy_vs_uncapped < 0.95;
  std::cout << "\n[verdict] "
            << (adverse_selection_shown && two_part_works ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": strategic users clog the fast queue and raise fleet energy;\n"
               "          the two-part mechanism recovers savings with users no slower\n";
  return adverse_selection_shown && two_part_works ? 0 : 1;
}
