// ABL-REDUN — redundancy & reproducibility waste (Sec. IV-A).
//
// "problems with reproducibility of research only compound these
// redundancies as (multiple) attempts at replication also waste resources
// and energy." The model prices that waste: reproduction attempts are
// geometric in the field's effective reproducibility rate; avoidable
// hyper-parameter re-search scales with unreported settings. Expected shape:
// wasted energy falls monotonically (and steeply at first) as reporting
// lifts the reproduction rate — the quantified case for the paper's
// measurement/reporting agenda.

#include <iostream>

#include "util/table.hpp"
#include "workload/redundancy.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "ABL-REDUN: the energy price of irreproducibility");

  workload::RedundancyParams params;  // 1.3B-param run, 30-config sweep

  std::cout << "Per-project expectation vs reporting quality. Reporting moves BOTH\n"
               "levers: the reproduction success rate (clear settings) and the\n"
               "avoidable share of the hyper-parameter sweep (published search):\n\n";
  util::Table table({"reporting", "repro rate", "avoidable sweep", "expected attempts",
                     "failed runs", "wasted kWh/project", "waste fraction %"});
  struct Scenario {
    const char* label;
    double rate;
    double avoidable;
  };
  double waste_poor = 0.0, waste_excellent = 0.0;
  for (const Scenario& s : {Scenario{"poor", 0.2, 0.6}, Scenario{"typical", 0.4, 0.5},
                            Scenario{"good", 0.7, 0.25}, Scenario{"excellent", 0.95, 0.05}}) {
    workload::RedundancyParams at = params;
    at.reproduction_success_rate = s.rate;
    at.avoidable_sweep_fraction = s.avoidable;
    const workload::ProjectWaste waste = workload::project_waste(at);
    if (s.rate == 0.2) waste_poor = waste.wasted.kilowatt_hours();
    if (s.rate == 0.95) waste_excellent = waste.wasted.kilowatt_hours();
    table.add(s.label, util::fmt_fixed(s.rate, 2), util::fmt_fixed(s.avoidable, 2),
              util::fmt_fixed(waste.expected_attempts, 2),
              util::fmt_fixed(waste.expected_failed_runs, 2),
              util::fmt_fixed(waste.wasted.kilowatt_hours(), 0),
              util::fmt_fixed(100.0 * waste.waste_fraction(), 1));
  }
  std::cout << table;

  // Community scale: one NeurIPS-cycle's worth of projects.
  const workload::CommunityWaste community = workload::community_waste(
      params, /*projects=*/9000.0, util::usd_per_mwh(32.0), util::kg_per_kwh(0.28));
  std::cout << "\nCommunity scale (9,000 projects/cycle at the default rate "
            << util::fmt_fixed(params.reproduction_success_rate, 2) << "):\n";
  std::cout << "  wasted energy: " << util::fmt_fixed(community.wasted.megawatt_hours(), 0)
            << " MWh  |  CO2: " << util::fmt_fixed(community.wasted_carbon.metric_tons(), 0)
            << " t  |  cost: $" << util::fmt_fixed(community.wasted_cost.dollars(), 0) << "\n";

  // The reporting dividend (Sec. IV-B's agenda, priced).
  const util::Energy dividend = workload::reporting_dividend(params, 0.9);
  std::cout << "\nReporting dividend per project (rate 0.40 -> 0.90 plus published\n"
               "settings eliminating avoidable sweep): "
            << util::fmt_fixed(dividend.kilowatt_hours(), 0) << " kWh ("
            << util::fmt_fixed(100.0 * dividend.kilowatt_hours() /
                                   workload::project_waste(params).wasted.kilowatt_hours(),
                               1)
            << "% of current waste recovered)\n";

  const bool shape_ok = waste_poor > 2.0 * waste_excellent && dividend.kilowatt_hours() > 0.0;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": waste falls steeply as reporting lifts reproducibility\n";
  return shape_ok ? 0 : 1;
}
