// FIG2 — Power Consumption vs. Green Fuel Mix (paper Fig. 2).
//
// "Average monthly power consumption of MIT's E1 hypercluster plotted
// against monthly average percentage of supplied total energy derived from
// solar and wind (2020-21). There are potential opportunities — high power
// consumption when green energy production is low and vice versa instead of
// the opposite."
//
// Expected shape: power 200-450 kW peaking Jun-Aug; renewable share 5-8.5%
// peaking Mar-May; a NEGATIVE power/renewables correlation.

#include <iostream>

#include "bench_common.hpp"
#include "stats/correlation.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "FIG 2: Power consumption vs. sustainable fuel generation");

  const auto dc = bench::run_reference_window();
  const auto months = dc->monthly_power().months();
  const auto power_kw = dc->monthly_power().means();

  std::vector<double> renewable_pct;
  renewable_pct.reserve(months.size());
  for (const util::MonthKey& m : months)
    renewable_pct.push_back(dc->fuel_mix().monthly_renewable_pct(m));

  // The figure plots one seasonal cycle averaged over 2020-21.
  const auto power_by_month = bench::month_of_year_means(months, power_kw);
  const auto renew_by_month = bench::month_of_year_means(months, renewable_pct);

  util::Table table({"month", "avg power (kW)", "% total from solar/wind"});
  for (int m = 0; m < 12; ++m) {
    table.add(util::month_name(m + 1), util::fmt_fixed(power_by_month[static_cast<std::size_t>(m)], 1),
              util::fmt_fixed(renew_by_month[static_cast<std::size_t>(m)], 2));
  }
  std::cout << table;

  const double corr = stats::pearson(power_by_month, renew_by_month);
  std::cout << "\nPearson(power, renewable share) = " << util::fmt_fixed(corr, 3)
            << "   (paper: inverse relationship)\n";

  // The specific mis-match the paper calls out: summer consumption is high
  // while the green share is at its annual low.
  const double summer_power =
      (power_by_month[5] + power_by_month[6] + power_by_month[7]) / 3.0;
  const double spring_power =
      (power_by_month[2] + power_by_month[3] + power_by_month[4]) / 3.0;
  const double summer_renew =
      (renew_by_month[5] + renew_by_month[6] + renew_by_month[7]) / 3.0;
  const double spring_renew =
      (renew_by_month[2] + renew_by_month[3] + renew_by_month[4]) / 3.0;
  std::cout << "Jun-Aug: power " << util::fmt_fixed(summer_power, 0) << " kW at "
            << util::fmt_fixed(summer_renew, 1) << "% renewables;  Mar-May: power "
            << util::fmt_fixed(spring_power, 0) << " kW at " << util::fmt_fixed(spring_renew, 1)
            << "% renewables\n";

  const bool shape_ok = corr < -0.2 && summer_power > spring_power && spring_renew > summer_renew;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": high power coincides with low green share (the paper's opportunity)\n";
  return shape_ok ? 0 : 1;
}
