// ABL-CARB — Carbon-aware scheduling vs. FCFS / backfill (Sec. II-A
// strategy 1 at job granularity; the paper's citation [16]).
//
// The measured quantity is the accountant's *attributed* job carbon (job IT
// energy x PUE x instantaneous grid intensity) — the Eq. 2 per-job e_i that
// time-shifting actually moves. Facility base load (idle nodes, cooling)
// runs regardless of job placement and would dilute the signal.
//
// Expected shape: flexible jobs scheduled carbon-aware emit measurably less
// CO2 per GPU-hour than under FCFS/backfill at a bounded queue-wait cost,
// and the fleet-level saving shrinks toward zero as the flexible fraction
// goes to zero.

#include <iostream>
#include <memory>

#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "sched/carbon_aware.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

struct Outcome {
  double co2_per_gpuh_all = 0.0;       // attributed kg/GPU-h, all jobs
  double job_mean_intensity = 0.0;     // mean per-job kgCO2/kWh, flexible jobs
  double deferred_pct = 0.0;           // flexible jobs actually held
  double wait_h = 0.0;
  double completed_kgpuh = 0.0;
};

Outcome run_policy(core::PolicyKind policy, double flexible_scale) {
  const util::MonthSpan start_span = util::month_span({2021, 4});
  const util::MonthSpan end_span = util::month_span({2021, 6});

  core::DatacenterConfig config;
  config.start = start_span.start - util::days(7);
  core::Datacenter dc(config, core::make_scheduler(policy));

  // Moderate load: carbon-aware shifting needs capacity headroom to move
  // work in time (Radovanovic et al. likewise shift within spare capacity);
  // at saturation jobs run whenever GPUs free up regardless of policy.
  workload::ArrivalConfig arrivals;
  arrivals.base_rate_per_hour = 9.0;
  for (workload::ClassProfile& p : arrivals.mix) p.flexible_probability *= flexible_scale;
  dc.attach_arrivals(arrivals, workload::DeadlineCalendar::standard());

  dc.run_until(start_span.start);
  dc.run_until(end_span.end);

  Outcome out;
  double co2_all = 0.0, gpuh_all = 0.0, intensity_sum = 0.0;
  std::size_t flex_n = 0, flex_deferred = 0;
  for (const telemetry::JobFootprint& fp : dc.accountant().all_jobs()) {
    co2_all += fp.carbon.kilograms();
    gpuh_all += fp.gpu_hours;
    const cluster::Job& job = dc.jobs().get(fp.job);
    if (job.request().flexible && job.state() == cluster::JobState::kCompleted) {
      ++flex_n;
      if ((job.start_time() - job.submit_time()).hours() > 0.3) ++flex_deferred;
      intensity_sum += fp.carbon.kilograms() / fp.facility_energy.kilowatt_hours();
    }
  }
  out.co2_per_gpuh_all = gpuh_all > 0.0 ? co2_all / gpuh_all : 0.0;
  out.job_mean_intensity = flex_n > 0 ? intensity_sum / static_cast<double>(flex_n) : 0.0;
  out.deferred_pct =
      flex_n > 0 ? 100.0 * static_cast<double>(flex_deferred) / static_cast<double>(flex_n) : 0.0;
  out.wait_h = dc.summary().mean_queue_wait_hours;
  out.completed_kgpuh = dc.summary().completed_gpu_hours / 1000.0;
  return out;
}

}  // namespace

int main() {
  util::print_banner(std::cout,
                     "ABL-CARB: carbon-aware scheduling vs FCFS/backfill (Apr-Jun 2021)");

  std::cout << "Attributed job carbon (Eq. 2 per-job e_i; \"flexible intensity\" = mean\n"
               "kgCO2/kWh experienced by a flexible job over its run):\n\n";
  util::Table table({"policy", "all-jobs kg/GPU-h", "flexible intensity", "deferred %",
                     "mean wait (h)", "completed kGPU-h", "flexible intensity saved %"});

  Outcome fcfs_base;
  double flexible_saving = 0.0;
  for (const auto& [policy, label] :
       std::vector<std::pair<core::PolicyKind, const char*>>{
           {core::PolicyKind::kFcfs, "fcfs"},
           {core::PolicyKind::kBackfill, "backfill"},
           {core::PolicyKind::kCarbonAware, "carbon_aware"}}) {
    const Outcome o = run_policy(policy, 1.0);
    if (policy == core::PolicyKind::kFcfs) fcfs_base = o;
    const double saving = 100.0 * (1.0 - o.job_mean_intensity / fcfs_base.job_mean_intensity);
    if (policy == core::PolicyKind::kCarbonAware) flexible_saving = saving;
    table.add(label, util::fmt_fixed(o.co2_per_gpuh_all, 4),
              util::fmt_fixed(o.job_mean_intensity, 4), util::fmt_fixed(o.deferred_pct, 1),
              util::fmt_fixed(o.wait_h, 2), util::fmt_fixed(o.completed_kgpuh, 1),
              util::fmt_fixed(saving, 2));
  }
  std::cout << table;

  // Flexibility ablation: the fleet-level saving must shrink as the
  // flexible fraction goes to zero.
  std::cout << "\nFleet-level saving vs flexibility of the workload mix:\n\n";
  util::Table flex_table({"flexible mix", "carbon_aware all-jobs kg/GPU-h", "fcfs all-jobs",
                          "saving %"});
  double saving_full = 0.0, saving_none = 0.0;
  for (double scale : {1.0, 0.5, 0.0}) {
    const Outcome fcfs = run_policy(core::PolicyKind::kFcfs, scale);
    const Outcome green = run_policy(core::PolicyKind::kCarbonAware, scale);
    const double saving = 100.0 * (1.0 - green.co2_per_gpuh_all / fcfs.co2_per_gpuh_all);
    if (scale == 1.0) saving_full = saving;
    if (scale == 0.0) saving_none = saving;
    flex_table.add("x" + util::fmt_fixed(scale, 1), util::fmt_fixed(green.co2_per_gpuh_all, 4),
                   util::fmt_fixed(fcfs.co2_per_gpuh_all, 4), util::fmt_fixed(saving, 2));
  }
  std::cout << flex_table;

  const bool shape_ok = flexible_saving > 2.0 && saving_full > saving_none + 0.1;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": carbon-aware cuts the carbon intensity flexible jobs run at by\n"
               "          a few percent; fleet-level savings stay small single digits\n"
               "          because long runs span beyond green windows (consistent with\n"
               "          production carbon-aware deployments, the paper's ref. [16])\n";
  return shape_ok ? 0 : 1;
}
