// ABL-CARB — Carbon-aware scheduling vs. FCFS / backfill (Sec. II-A
// strategy 1 at job granularity; the paper's citation [16]).
//
// The measured quantity is the accountant's *attributed* job carbon (job IT
// energy x PUE x instantaneous grid intensity) — the Eq. 2 per-job e_i that
// time-shifting actually moves. Facility base load (idle nodes, cooling)
// runs regardless of job placement and would dilute the signal.
//
// Every number is a Monte-Carlo ensemble over independently-seeded replicas
// (experiment::replica_seed streams) reported as mean ± 95% CI, and the
// policy comparisons are seed-paired: the same replica seed produces the
// same arrival stream under each policy, so the savings column measures the
// policy effect, not workload luck.
//
// Expected shape: flexible jobs scheduled carbon-aware emit measurably less
// CO2 per GPU-hour than under FCFS/backfill at a bounded queue-wait cost,
// and the fleet-level saving shrinks toward zero as the flexible fraction
// goes to zero.

#include <iostream>
#include <memory>
#include <vector>

#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "experiment/aggregator.hpp"
#include "experiment/runner.hpp"
#include "telemetry/experiment.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace greenhpc;

namespace {

constexpr std::uint64_t kBaseSeed = 42;
constexpr std::size_t kReplicas = 5;

struct Outcome {
  double co2_per_gpuh_all = 0.0;       // attributed kg/GPU-h, all jobs
  double job_mean_intensity = 0.0;     // mean per-job kgCO2/kWh, flexible jobs
  double deferred_pct = 0.0;           // flexible jobs actually held
  double wait_h = 0.0;
  double completed_kgpuh = 0.0;
};

Outcome run_policy(core::PolicyKind policy, double flexible_scale, std::uint64_t seed) {
  // The experiment harness's single assembly point, so this bench's twins
  // stay bit-identical to the equivalent ScenarioSpec replicas.
  experiment::ScenarioSpec spec;
  spec.name = "abl_carb";
  spec.scheduler = policy;
  spec.start = {2021, 4};
  spec.months = 3;
  // Moderate load: carbon-aware shifting needs capacity headroom to move
  // work in time (Radovanovic et al. likewise shift within spare capacity);
  // at saturation jobs run whenever GPUs free up regardless of policy.
  spec.rate_per_hour = 9.0;
  spec.flexible_scale = flexible_scale;
  const std::unique_ptr<core::Datacenter> dc_owner = experiment::make_single_site(spec, seed);
  core::Datacenter& dc = *dc_owner;

  dc.run_until(spec.window_start());
  dc.run_until(spec.window_end());

  Outcome out;
  double co2_all = 0.0, gpuh_all = 0.0, intensity_sum = 0.0;
  std::size_t flex_n = 0, flex_deferred = 0;
  for (const telemetry::JobFootprint& fp : dc.accountant().all_jobs()) {
    co2_all += fp.carbon.kilograms();
    gpuh_all += fp.gpu_hours;
    const cluster::Job& job = dc.jobs().get(fp.job);
    if (job.request().flexible && job.state() == cluster::JobState::kCompleted) {
      ++flex_n;
      if ((job.start_time() - job.submit_time()).hours() > 0.3) ++flex_deferred;
      intensity_sum += fp.carbon.kilograms() / fp.facility_energy.kilowatt_hours();
    }
  }
  out.co2_per_gpuh_all = gpuh_all > 0.0 ? co2_all / gpuh_all : 0.0;
  out.job_mean_intensity = flex_n > 0 ? intensity_sum / static_cast<double>(flex_n) : 0.0;
  out.deferred_pct =
      flex_n > 0 ? 100.0 * static_cast<double>(flex_deferred) / static_cast<double>(flex_n) : 0.0;
  out.wait_h = dc.summary().mean_queue_wait_hours;
  out.completed_kgpuh = dc.summary().completed_gpu_hours / 1000.0;
  return out;
}

/// kReplicas independently-seeded outcomes, run on the shared pool.
std::vector<Outcome> run_ensemble(core::PolicyKind policy, double flexible_scale) {
  std::vector<Outcome> outcomes(kReplicas);
  util::parallel_for(kReplicas, [&](std::size_t k) {
    outcomes[k] = run_policy(policy, flexible_scale, experiment::replica_seed(kBaseSeed, k));
  });
  return outcomes;
}

telemetry::MetricStats fold(const char* name, const std::vector<Outcome>& outcomes,
                            double (Outcome::*field)) {
  std::vector<double> values;
  values.reserve(outcomes.size());
  for (const Outcome& o : outcomes) values.push_back(o.*field);
  return experiment::Aggregator::fold(name, values);
}

/// Seed-paired percentage saving of `green` vs `base` on one Outcome field.
telemetry::MetricStats paired_saving(const char* name, const std::vector<Outcome>& green,
                                     const std::vector<Outcome>& base,
                                     double (Outcome::*field)) {
  std::vector<double> savings;
  savings.reserve(green.size());
  for (std::size_t k = 0; k < green.size(); ++k) {
    savings.push_back(100.0 * (1.0 - green[k].*field / base[k].*field));
  }
  return experiment::Aggregator::fold(name, savings);
}

}  // namespace

int main() {
  util::print_banner(std::cout,
                     "ABL-CARB: carbon-aware scheduling vs FCFS/backfill (Apr-Jun 2021)");
  std::cout << kReplicas << " seed-paired replicas per cell, mean ± 95% CI\n\n";

  std::cout << "Attributed job carbon (Eq. 2 per-job e_i; \"flexible intensity\" = mean\n"
               "kgCO2/kWh experienced by a flexible job over its run):\n\n";
  util::Table table({"policy", "all-jobs kg/GPU-h", "flexible intensity", "deferred %",
                     "mean wait (h)", "completed kGPU-h", "flexible intensity saved %"});

  std::vector<Outcome> fcfs_full, carbon_full;
  double flexible_saving = 0.0;
  for (const auto& [policy, label] :
       std::vector<std::pair<core::PolicyKind, const char*>>{
           {core::PolicyKind::kFcfs, "fcfs"},
           {core::PolicyKind::kBackfill, "backfill"},
           {core::PolicyKind::kCarbonAware, "carbon_aware"}}) {
    const std::vector<Outcome> ensemble = run_ensemble(policy, 1.0);
    if (policy == core::PolicyKind::kFcfs) fcfs_full = ensemble;
    if (policy == core::PolicyKind::kCarbonAware) carbon_full = ensemble;
    const telemetry::MetricStats saving =
        paired_saving("saved", ensemble, fcfs_full, &Outcome::job_mean_intensity);
    if (policy == core::PolicyKind::kCarbonAware) flexible_saving = saving.mean;
    const telemetry::MetricStats co2 = fold("co2", ensemble, &Outcome::co2_per_gpuh_all);
    const telemetry::MetricStats intensity =
        fold("intensity", ensemble, &Outcome::job_mean_intensity);
    const telemetry::MetricStats deferred = fold("deferred", ensemble, &Outcome::deferred_pct);
    const telemetry::MetricStats wait = fold("wait", ensemble, &Outcome::wait_h);
    const telemetry::MetricStats kgpuh = fold("kgpuh", ensemble, &Outcome::completed_kgpuh);
    table.add(label, telemetry::fmt_ci(co2.mean, co2.ci95_half, 4),
              telemetry::fmt_ci(intensity.mean, intensity.ci95_half, 4),
              telemetry::fmt_ci(deferred.mean, deferred.ci95_half, 1),
              telemetry::fmt_ci(wait.mean, wait.ci95_half, 2),
              telemetry::fmt_ci(kgpuh.mean, kgpuh.ci95_half, 1),
              telemetry::fmt_ci(saving.mean, saving.ci95_half, 2));
  }
  std::cout << table;

  // Flexibility ablation: the fleet-level saving must shrink as the
  // flexible fraction goes to zero.
  std::cout << "\nFleet-level saving vs flexibility of the workload mix:\n\n";
  util::Table flex_table({"flexible mix", "carbon_aware all-jobs kg/GPU-h", "fcfs all-jobs",
                          "saving %"});
  double saving_full = 0.0, saving_none = 0.0;
  for (double scale : {1.0, 0.5, 0.0}) {
    // The scale-1.0 ensembles are the ones Part 1 already ran — reuse them.
    const std::vector<Outcome> fcfs =
        scale == 1.0 ? fcfs_full : run_ensemble(core::PolicyKind::kFcfs, scale);
    const std::vector<Outcome> green =
        scale == 1.0 ? carbon_full : run_ensemble(core::PolicyKind::kCarbonAware, scale);
    const telemetry::MetricStats saving =
        paired_saving("saving", green, fcfs, &Outcome::co2_per_gpuh_all);
    if (scale == 1.0) saving_full = saving.mean;
    if (scale == 0.0) saving_none = saving.mean;
    const telemetry::MetricStats green_co2 = fold("green", green, &Outcome::co2_per_gpuh_all);
    const telemetry::MetricStats fcfs_co2 = fold("fcfs", fcfs, &Outcome::co2_per_gpuh_all);
    flex_table.add("x" + util::fmt_fixed(scale, 1),
                   telemetry::fmt_ci(green_co2.mean, green_co2.ci95_half, 4),
                   telemetry::fmt_ci(fcfs_co2.mean, fcfs_co2.ci95_half, 4),
                   telemetry::fmt_ci(saving.mean, saving.ci95_half, 2));
  }
  std::cout << flex_table;

  const bool shape_ok = flexible_saving > 2.0 && saving_full > saving_none + 0.1;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": carbon-aware cuts the carbon intensity flexible jobs run at by\n"
               "          a few percent; fleet-level savings stay small single digits\n"
               "          because long runs span beyond green windows (consistent with\n"
               "          production carbon-aware deployments, the paper's ref. [16])\n";
  return shape_ok ? 0 : 1;
}
