// ABL-EQ2 — Eq. 2: per-user tailored power caps vs. across-the-board caps.
//
//   min_i e_i(q_d(i), ...)  s.t.  a_i >= alpha_i  for every user i
//
// "by tailoring energy minimization efforts to representative user profiles
// and workloads, these mechanisms can reduce overall energy expenditure
// selectively in ways that systematic hardware interventions cannot."
//
// Setup: every user i has a tolerated slowdown budget proportional to their
// patience (their alpha_i). A uniform cluster cap must respect the *least*
// patient user's budget, so it can only tighten a little. The tailored
// policy caps each user's jobs at that user's own optimum. Expected shape:
//   E(tailored) < E(uniform-feasible) < E(uncapped),
// with no user's slowdown budget violated under tailoring.

#include <algorithm>
#include <iostream>
#include <memory>

#include "core/datacenter.hpp"
#include "power/gpu_power.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

double slowdown_budget(const workload::UserProfile& user) {
  // Patient users tolerate up to 12% slower jobs; impatient ones ~1%.
  return 0.01 + 0.11 * user.patience;
}

struct Outcome {
  double energy_mwh = 0.0;
  double completed_kgpuh = 0.0;
  double kwh_per_gpuh = 0.0;
};

Outcome run(const workload::UserPopulation& population, core::Datacenter::JobCapPolicy policy,
            const power::GpuPowerModel& /*model*/) {
  const util::MonthSpan may = util::month_span({2021, 5});
  core::DatacenterConfig config;
  config.start = may.start - util::days(5);
  core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard(),
                     &population);
  if (policy) dc.set_job_cap_policy(std::move(policy));
  dc.run_until(may.start);
  dc.run_until(may.end);

  Outcome out;
  const core::RunSummary s = dc.summary();
  out.energy_mwh = s.grid_totals.energy.megawatt_hours();
  out.completed_kgpuh = s.completed_gpu_hours / 1000.0;
  out.kwh_per_gpuh = s.grid_totals.energy.kilowatt_hours() / std::max(1.0, s.completed_gpu_hours);
  return out;
}

}  // namespace

int main() {
  util::print_banner(std::cout, "ABL-EQ2: per-user tailored caps vs across-the-board caps");

  util::Rng pop_rng(2021);
  workload::PopulationConfig pop_config;
  pop_config.user_count = 200;
  const workload::UserPopulation population =
      workload::UserPopulation::generate(pop_config, pop_rng);

  const power::GpuPowerModel model;

  // The strictest user's budget pins the uniform cap.
  double min_budget = 1.0;
  for (const workload::UserProfile& u : population.users())
    min_budget = std::min(min_budget, slowdown_budget(u));
  const util::Power uniform_cap = model.optimal_cap(min_budget);

  // Tailored policy: each job runs at its owner's optimum.
  auto tailored = [&](const cluster::Job& job) -> std::optional<util::Power> {
    const workload::UserProfile& user = population.user(job.request().user);
    return model.optimal_cap(slowdown_budget(user));
  };
  // Uniform policy: everyone at the strictest-feasible cap.
  auto uniform = [&](const cluster::Job&) -> std::optional<util::Power> {
    return uniform_cap;
  };

  const Outcome uncapped = run(population, nullptr, model);
  const Outcome uniform_out = run(population, uniform, model);
  const Outcome tailored_out = run(population, tailored, model);

  std::cout << "population: 200 users; slowdown budgets 1-12% by patience;\n"
            << "uniform-feasible cap (strictest user binds): "
            << util::fmt_fixed(uniform_cap.watts(), 0) << " W\n\n";

  util::Table table({"policy", "facility MWh", "completed kGPU-h", "kWh per GPU-h",
                     "energy saved %"});
  for (const auto& [label, o] :
       std::vector<std::pair<const char*, const Outcome*>>{{"uncapped", &uncapped},
                                                           {"uniform (Eq. 1 style)", &uniform_out},
                                                           {"tailored (Eq. 2)", &tailored_out}}) {
    table.add(label, util::fmt_fixed(o->energy_mwh, 1), util::fmt_fixed(o->completed_kgpuh, 1),
              util::fmt_fixed(o->kwh_per_gpuh, 3),
              util::fmt_fixed(100.0 * (1.0 - o->kwh_per_gpuh / uncapped.kwh_per_gpuh), 2));
  }
  std::cout << table;

  // Per-user guarantee: every tailored cap respects its owner's budget by
  // construction of optimal_cap; print the distribution of assigned caps.
  std::array<int, 4> cap_histogram{};  // <170 / 170-200 / 200-230 / >=230
  for (const workload::UserProfile& u : population.users()) {
    const double w = model.optimal_cap(slowdown_budget(u)).watts();
    if (w < 170.0) ++cap_histogram[0];
    else if (w < 200.0) ++cap_histogram[1];
    else if (w < 230.0) ++cap_histogram[2];
    else ++cap_histogram[3];
  }
  std::cout << "\ntailored cap distribution: <170W: " << cap_histogram[0]
            << " | 170-200W: " << cap_histogram[1] << " | 200-230W: " << cap_histogram[2]
            << " | >=230W: " << cap_histogram[3] << "\n";

  const bool shape_ok = tailored_out.kwh_per_gpuh < uniform_out.kwh_per_gpuh &&
                        uniform_out.kwh_per_gpuh < uncapped.kwh_per_gpuh &&
                        tailored_out.completed_kgpuh > 0.97 * uncapped.completed_kgpuh;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": tailoring to per-user floors saves more energy than any\n"
               "          across-the-board cap that respects every user — the paper's\n"
               "          case for micro-level (Eq. 2) over macro-level (Eq. 1) control\n";
  return shape_ok ? 0 : 1;
}
