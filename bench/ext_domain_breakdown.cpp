// EXT-DOMAIN — per-domain energy breakdown (the paper's stated future work).
//
// Sec. III: "We hope that future work will undertake a finer analysis,
// accounting for details such as workload type, type of research activity
// represented, breakdown of activity and energy use by domain (e.g. NLP)."
//
// Jobs are domain-tagged from the deadline-modulated area mix; the
// accountant rolls facility energy up by domain per month. Expected shape:
// the General-ML + NLP share of attributed energy peaks in the run-up to the
// spring-2021 NeurIPS/EMNLP deadlines relative to the preceding winter.

#include <array>
#include <iostream>
#include <map>

#include "core/datacenter.hpp"
#include "util/table.hpp"
#include "workload/conferences.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "EXT: energy breakdown by research domain (Jan-Jun 2021)");

  const util::TimePoint start = util::to_timepoint(util::CivilDate{2021, 1, 1});

  core::DatacenterConfig config;
  config.start = start - util::days(7);
  core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  dc.run_until(start);

  // Month-by-month: run a month, snapshot the per-domain ledger, diff.
  std::array<double, 5> prev{};
  util::Table table({"month", "NLP/Speech kWh", "CV kWh", "Robotics kWh", "GeneralML kWh",
                     "DataMining kWh", "ML+NLP share %"});
  std::map<int, double> mlnlp_share_by_month;
  for (int month = 1; month <= 6; ++month) {
    dc.run_until(util::month_span({2021, month}).end);
    std::array<double, 5> now{};
    for (const auto& [domain, energy] : dc.accountant().by_domain()) {
      if (domain < 5) now[domain] += energy.kilowatt_hours();
    }
    std::array<double, 5> delta{};
    double total = 0.0;
    for (std::size_t a = 0; a < 5; ++a) {
      delta[a] = now[a] - prev[a];
      total += delta[a];
    }
    prev = now;
    const double mlnlp =
        100.0 *
        (delta[static_cast<std::size_t>(workload::Area::kGeneralMl)] +
         delta[static_cast<std::size_t>(workload::Area::kNlpSpeech)]) /
        total;
    mlnlp_share_by_month[month] = mlnlp;
    table.add(util::month_name(month), util::fmt_fixed(delta[0], 0),
              util::fmt_fixed(delta[1], 0), util::fmt_fixed(delta[2], 0),
              util::fmt_fixed(delta[3], 0), util::fmt_fixed(delta[4], 0),
              util::fmt_fixed(mlnlp, 1));
  }
  std::cout << table;

  const double winter = (mlnlp_share_by_month[1] + mlnlp_share_by_month[2]) / 2.0;
  const double spring = (mlnlp_share_by_month[4] + mlnlp_share_by_month[5]) / 2.0;
  std::cout << "\nML+NLP energy share: Jan-Feb " << util::fmt_fixed(winter, 1)
            << "% vs Apr-May " << util::fmt_fixed(spring, 1)
            << "% (NeurIPS May 26 / EMNLP May 17 run-up)\n";

  const bool shape_ok = spring > winter + 1.0;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": the domain breakdown resolves which communities drive the\n"
               "          spring demand ramp — the paper's requested finer analysis\n";
  return shape_ok ? 0 : 1;
}
