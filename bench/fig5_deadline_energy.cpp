// FIG5 — Energy Usage vs. Number of Conference Deadlines (paper Fig. 5).
//
// "We compare the number of conference deadlines per month from January 2020
// to end of year 2021 with trends in monthly energy usage ... there is a
// sharper pickup in energy usage starting around Jan/Feb 2021 in
// anticipation of a notable concentration of deadlines in the subsequent
// months."
//
// Expected shape: (a) energy *leads* deadline counts — the best
// cross-correlation lag has energy moving first (anticipatory ramp);
// (b) Jan-Feb 2021 energy exceeds Jan-Feb 2020 despite near-identical
// weather, because spring-2021 deadlines concentrate harder.

#include <iostream>

#include "bench_common.hpp"
#include "stats/correlation.hpp"
#include "stats/regression.hpp"
#include "util/table.hpp"
#include "workload/conferences.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "FIG 5: Energy usage vs. number of conference deadlines");

  const auto dc = bench::run_reference_window();
  const auto months = dc->monthly_power().months();
  const auto power_kw = dc->monthly_power().means();

  const workload::DeadlineCalendar calendar = workload::DeadlineCalendar::standard();
  std::vector<double> deadline_counts;
  deadline_counts.reserve(months.size());
  for (const util::MonthKey& m : months)
    deadline_counts.push_back(static_cast<double>(calendar.monthly_count(m)));

  util::Table table({"month", "avg power (kW)", "deadlines", "avg temp (F)"});
  for (std::size_t i = 0; i < months.size(); ++i) {
    table.add(months[i].label(), util::fmt_fixed(power_kw[i], 1),
              static_cast<int>(deadline_counts[i]),
              util::fmt_fixed(dc->weather().monthly_average(months[i]).fahrenheit(), 1));
  }
  std::cout << table;

  // "To help account for the confounding effects of seasonality, temperature,
  // and other factors" (Sec. III) the paper uses two years of data; we go one
  // step further and regress temperature out of monthly power, analysing the
  // residual — the deadline-driven component.
  std::vector<double> temp_f, weights;
  for (const util::MonthKey& m : months) {
    temp_f.push_back(dc->weather().monthly_average(m).fahrenheit());
    weights.push_back(calendar.monthly_weight(m));
  }
  const stats::SimpleFit temp_fit = stats::linear_fit(temp_f, power_kw);
  std::vector<double> residual(power_kw.size());
  for (std::size_t i = 0; i < power_kw.size(); ++i)
    residual[i] = power_kw[i] - temp_fit.predict(temp_f[i]);

  // (a) Anticipation: correlate residual power[t] with deadline weight
  // [t+lag]; positive lag = power moves before the deadlines land.
  const auto lags = stats::cross_correlation(residual, weights, 2);
  std::cout << "\nTemperature-adjusted cross-correlation (power leads deadlines at +lag):\n";
  for (const auto& lc : lags) {
    std::cout << "  lag " << (lc.lag >= 0 ? "+" : "") << lc.lag << " months: r = "
              << util::fmt_fixed(lc.correlation, 3) << "\n";
  }
  const auto best = stats::best_lag(residual, weights, 2);

  // (b) The paper's Jan/Feb-2021-vs-2020 comparison (temperatures in those
  // windows are near-identical, as the paper notes).
  auto residual_of = [&](int year, int month) {
    for (std::size_t i = 0; i < months.size(); ++i)
      if (months[i].year == year && months[i].month == month) return residual[i];
    return 0.0;
  };
  const double janfeb_2020 = (residual_of(2020, 1) + residual_of(2020, 2)) / 2.0;
  const double janfeb_2021 = (residual_of(2021, 1) + residual_of(2021, 2)) / 2.0;
  double spring20 = 0.0, spring21 = 0.0;
  for (int m = 2; m <= 5; ++m) {
    spring20 += calendar.monthly_weight({2020, m});
    spring21 += calendar.monthly_weight({2021, m});
  }

  std::cout << "\nJan-Feb temperature-adjusted power: 2020 = " << util::fmt_fixed(janfeb_2020, 1)
            << " kW, 2021 = " << util::fmt_fixed(janfeb_2021, 1)
            << " kW  (pickup: " << util::fmt_fixed(janfeb_2021 - janfeb_2020, 1) << " kW)\n";
  std::cout << "Feb-May weighted deadline concentration: 2020 = " << util::fmt_fixed(spring20, 1)
            << ", 2021 = " << util::fmt_fixed(spring21, 1)
            << " (the \"notable concentration\" ahead of the 2021 pickup)\n";
  std::cout << "Best lag: " << (best.lag >= 0 ? "+" : "") << best.lag
            << " months (r = " << util::fmt_fixed(best.correlation, 3) << ")\n";

  const bool shape_ok = best.lag >= 0 && best.correlation > 0.2 && janfeb_2021 > janfeb_2020 &&
                        spring21 > spring20;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": demand ramps ahead of deadline concentrations; Jan/Feb-2021 pickup present\n";
  return shape_ok ? 0 : 1;
}
