// MIGRATE1 — Mid-run checkpoint migration vs admission-only routing.
//
// The question this PR's subsystem must answer: once jobs are already routed
// by the strongest admission-time policy (carbon_forecast — placement priced
// at the forecast integrated over each job's runtime), is there anything
// left for *mid-run* relocation to win? The paper's answer (Sec. II: defer,
// pause, and relocate flexible workloads) says yes: a multi-hour training
// run lives through grid swings its admission decision could not see, and
// checkpoint-and-migrate is the only lever that can act on them after t=0.
//
// Seed-paired Monte-Carlo comparison (same replica seed => same arrival
// stream and regional environments under either policy):
//
//   baseline:   4-region fleet, carbon_forecast admission routing, jobs
//               pinned to their region for life
//   treatment:  identical, plus the carbon MigrationPlanner checkpointing
//               running jobs to greener regions (checkpoint/ship/restore
//               energy billed into the fleet footprint)
//
// Acceptance (the ISSUE 4 bar, pinned by the MigrationRegression ctest):
//   - mean CO2 (treatment) <= mean CO2 (baseline) at equal (within 5%)
//     delivered GPU-hours,
//   - treatment wins the paired comparison on >= 3/4 of seeds,
//   - the 95% CI of the per-seed saving excludes zero.
//
// Flags (for the CI bench-smoke job): --replicas N (default 20), --days D
// (default 0 = one full month), --checkpoint-cost X, --policy carbon|cost.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/aggregator.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "migrate/planner.hpp"
#include "telemetry/experiment.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

constexpr std::uint64_t kBaseSeed = 42;

struct Options {
  std::size_t replicas = 20;
  int days = 0;  // 0 = a full month
  double checkpoint_cost = 1.0;
  std::string policy = "carbon";
};

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replicas" && i + 1 < argc) {
      const int replicas = std::atoi(argv[++i]);
      if (replicas < 2) {
        std::cerr << "error: --replicas must be >= 2\n";
        std::exit(2);
      }
      opts.replicas = static_cast<std::size_t>(replicas);
    } else if (arg == "--days" && i + 1 < argc) {
      opts.days = std::atoi(argv[++i]);
      if (opts.days < 0) {
        std::cerr << "error: --days must be >= 0\n";
        std::exit(2);
      }
    } else if (arg == "--checkpoint-cost" && i + 1 < argc) {
      opts.checkpoint_cost = std::atof(argv[++i]);
      if (opts.checkpoint_cost <= 0.0) {
        std::cerr << "error: --checkpoint-cost must be positive\n";
        std::exit(2);
      }
    } else if (arg == "--policy" && i + 1 < argc) {
      opts.policy = argv[++i];
      if (opts.policy != "carbon" && opts.policy != "cost") {
        std::cerr << "error: --policy must be carbon or cost\n";
        std::exit(2);
      }
    } else {
      std::cerr << "usage: fleet_migration [--replicas N] [--days D] "
                   "[--checkpoint-cost X] [--policy carbon|cost]\n";
      std::exit(2);
    }
  }
  return opts;
}

double objective_of(const core::RunSummary& s, const std::string& policy) {
  return policy == "cost" ? s.grid_totals.cost.dollars() : s.grid_totals.carbon.kilograms();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse(argc, argv);
  util::print_banner(std::cout, "MIGRATE1: mid-run checkpoint migration vs admission-only");
  std::cout << opts.replicas << " seed-paired replicas per policy, base seed " << kBaseSeed
            << ", objective " << opts.policy << ", checkpoint cost x"
            << util::fmt_fixed(opts.checkpoint_cost, 1) << "\n\n";

  // The migration scenario's window: hot July fleet, pressure high enough
  // that jobs routinely start on a dirty grid with hours of runtime left.
  experiment::ScenarioSpec base;
  base.name = "fleet_migration_bench";
  base.mode = experiment::Mode::kFleet;
  base.router = "carbon_forecast";
  base.start = {2021, 7};
  base.rate_per_hour = 14.0;
  base.checkpoint_cost = opts.checkpoint_cost;
  if (opts.days > 0) {
    base.days = opts.days;
    base.warmup_days = 2;
  }
  experiment::ScenarioSpec treated = base;
  base.migration_policy = "off";
  treated.migration_policy = opts.policy;

  const experiment::ReplicaRunner runner({opts.replicas, kBaseSeed, 0});
  const std::vector<experiment::ReplicaResult> stay = runner.run(base);
  const std::vector<experiment::ReplicaResult> move = runner.run(treated);

  std::vector<double> stay_obj, move_obj, saved_pct;
  double stay_hours = 0.0, move_hours = 0.0;
  std::size_t paired_wins = 0;
  for (std::size_t k = 0; k < stay.size(); ++k) {
    stay_obj.push_back(objective_of(stay[k].run, opts.policy));
    move_obj.push_back(objective_of(move[k].run, opts.policy));
    saved_pct.push_back(100.0 * (1.0 - move_obj[k] / stay_obj[k]));
    if (move_obj[k] <= stay_obj[k]) ++paired_wins;
    stay_hours += stay[k].run.completed_gpu_hours;
    move_hours += move[k].run.completed_gpu_hours;
  }
  const telemetry::MetricStats stay_stats = experiment::Aggregator::fold(base.label(), stay_obj);
  const telemetry::MetricStats move_stats =
      experiment::Aggregator::fold(treated.label(), move_obj);
  const telemetry::MetricStats saved = experiment::Aggregator::fold("saved_pct", saved_pct);
  const double hours_ratio = stay_hours > 0.0 ? move_hours / stay_hours : 0.0;

  const char* unit = opts.policy == "cost" ? "cost_usd" : "co2_kg";
  util::Table table({"policy", std::string(unit) + " (mean ± 95% CI)", "saved_pct",
                     "paired_wins", "gpu_hours_ratio"});
  table.add(stay_stats.name, telemetry::fmt_ci(stay_stats.mean, stay_stats.ci95_half), "-", "-",
            "-");
  table.add(move_stats.name, telemetry::fmt_ci(move_stats.mean, move_stats.ci95_half),
            telemetry::fmt_ci(saved.mean, saved.ci95_half, 3),
            std::to_string(paired_wins) + "/" + std::to_string(stay.size()),
            util::fmt_fixed(hours_ratio, 4));
  std::cout << table << "\n";

  const bool equal_hours = hours_ratio > 0.95 && hours_ratio < 1.05;
  const bool mean_wins = move_stats.mean <= stay_stats.mean;
  const bool majority = paired_wins * 4 >= stay.size() * 3;
  const bool ci_excludes_zero = saved.mean - saved.ci95_half > 0.0;
  const bool pass = equal_hours && mean_wins && majority && ci_excludes_zero;
  std::cout << (pass ? "PASS" : "FAIL") << ": migration-on mean " << unit
            << (mean_wins ? " <= " : " > ") << "admission-only at "
            << (equal_hours ? "equal" : "UNEQUAL") << " GPU-hours; paired wins " << paired_wins
            << "/" << stay.size() << (majority ? " (majority)" : " (NO majority)")
            << "; saving CI " << (ci_excludes_zero ? "excludes" : "INCLUDES") << " zero\n";
  return pass ? 0 : 1;
}
