// FLEET1 — Router comparison on the reference fleet.
//
// The spatial-shifting claim, quantified: the same routed workload (identical
// seed, identical arrival stream) is run across the four reference regions
// under each routing policy, and the fleet's total energy / cost / carbon are
// compared at (near-)equal completed GPU-hours. Expected shape: cost_greedy
// wins dollars, carbon_greedy wins CO2 — both by double-digit percentages
// against round_robin — because regional grids differ far more than any
// single grid's hour-to-hour swings. A second sweep shows the network-
// transfer penalty pulling carbon_greedy's placements back toward the home
// region as moving data gets more expensive.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "fleet/coordinator.hpp"
#include "telemetry/fleet.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

constexpr std::uint64_t kSeed = 42;
const util::MonthKey kStart{2021, 1};
/// Simulated months per router; `--months N` overrides (the CI bench-smoke
/// job runs N=1 so this harness cannot silently rot).
int g_months = 2;

telemetry::FleetRunSummary run_router(const std::string& router, util::Energy transfer,
                                      std::size_t* off_home_jobs = nullptr) {
  const util::MonthSpan first = util::month_span(kStart);
  const util::MonthSpan last =
      util::month_span(util::MonthKey::from_index(kStart.index_from_epoch() + g_months - 1));

  std::vector<fleet::RegionProfile> profiles = fleet::make_reference_fleet();
  fleet::FleetConfig config;
  config.seed = kSeed;
  config.start = first.start - util::days(7);  // warm-up week
  // The default moderate pressure: hot enough that routing matters, cool
  // enough that capacity-blind round-robin does not backlog the smallest
  // region (which would break the equal-GPU-hours comparison below).
  config.arrivals.base_rate_per_hour = fleet::scaled_fleet_rate(profiles);
  config.transfer_energy_per_job = transfer;

  fleet::FleetCoordinator coordinator(config, std::move(profiles),
                                      fleet::make_router(router));
  coordinator.run_until(last.end);

  if (off_home_jobs) {
    *off_home_jobs = 0;
    for (std::size_t i = 0; i < coordinator.region_count(); ++i) {
      if (i != 0) *off_home_jobs += coordinator.jobs_routed()[i];
    }
  }
  return coordinator.summary();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--months" && i + 1 < argc) {
      g_months = std::atoi(argv[++i]);
      if (g_months < 1 || g_months > 12) {
        std::cerr << "error: --months must be 1..12\n";
        return 2;
      }
    } else {
      std::cerr << "usage: fleet_routing [--months N]\n";
      return 2;
    }
  }
  util::print_banner(std::cout, "FLEET1: routing policies on the reference fleet");
  std::cout << "window " << kStart.label() << " + " << g_months << " months, seed " << kSeed
            << ", identical arrival stream per router\n\n";

  const std::vector<std::string> routers = {"round_robin", "least_loaded", "cost_greedy",
                                            "carbon_greedy"};
  std::vector<telemetry::FleetRunSummary> results;
  for (const std::string& r : routers) results.push_back(run_router(r, util::Energy{}));

  const telemetry::FleetRunSummary& baseline = results[0];  // round_robin
  util::Table table({"router", "gpu_hours", "energy_mwh", "cost_usd", "co2_t", "wait_h",
                     "cost_vs_rr_pct", "co2_vs_rr_pct"});
  for (std::size_t i = 0; i < routers.size(); ++i) {
    const core::RunSummary& t = results[i].total;
    const core::RunSummary& b = baseline.total;
    table.add(routers[i], util::fmt_fixed(t.completed_gpu_hours, 0),
              util::fmt_fixed(t.grid_totals.energy.megawatt_hours(), 1),
              util::fmt_fixed(t.grid_totals.cost.dollars(), 0),
              util::fmt_fixed(t.grid_totals.carbon.metric_tons(), 2),
              util::fmt_fixed(t.mean_queue_wait_hours, 2),
              util::fmt_fixed(100.0 * (t.grid_totals.cost / b.grid_totals.cost - 1.0), 1),
              util::fmt_fixed(100.0 * (t.grid_totals.carbon / b.grid_totals.carbon - 1.0), 1));
  }
  std::cout << table << "\n";

  // Per-region placement under the two greedy policies.
  for (const std::size_t i : {std::size_t{2}, std::size_t{3}}) {
    std::cout << routers[i] << " placement:\n" << telemetry::fleet_region_table(results[i])
              << "\n";
  }

  // The acceptance check: carbon_greedy must beat round_robin on carbon at
  // equal completed GPU-hours (within 5%).
  const double hours_ratio =
      results[3].total.completed_gpu_hours / baseline.total.completed_gpu_hours;
  const double carbon_ratio =
      results[3].total.grid_totals.carbon / baseline.total.grid_totals.carbon;
  std::cout << "carbon_greedy vs round_robin: " << util::fmt_fixed(100.0 * (1.0 - carbon_ratio), 1)
            << "% less CO2 at " << util::fmt_fixed(100.0 * hours_ratio, 1)
            << "% of the GPU-hours\n";
  const bool ok = carbon_ratio < 1.0 && hours_ratio > 0.95 && hours_ratio < 1.05;
  std::cout << (ok ? "PASS" : "FAIL")
            << ": lower fleet carbon at equal (within 5%) completed GPU-hours\n\n";

  // --- transfer penalty sweep ------------------------------------------------
  util::print_banner(std::cout, "network-transfer penalty vs carbon_greedy placement");
  util::Table sweep({"transfer_kwh_per_job", "off_home_jobs", "co2_t", "transfer_mwh"});
  for (const double kwh : {0.0, 5.0, 25.0, 100.0}) {
    std::size_t off_home = 0;
    const telemetry::FleetRunSummary s =
        run_router("carbon_greedy", util::kilowatt_hours(kwh), &off_home);
    sweep.add(util::fmt_fixed(kwh, 0), off_home,
              util::fmt_fixed(s.footprint().carbon.metric_tons(), 2),
              util::fmt_fixed(s.transfer.energy.megawatt_hours(), 2));
  }
  std::cout << sweep;
  return ok ? 0 : 1;
}
