// ABL-EQ1 — the paper's Eq. 1, solved on the digital twin.
//
//   min_{q_s, p, c}  E(q_d, q_s, p, c, eps)   s.t.   A(...) >= alpha
//
// Controls swept: the scheduler policy p (FCFS / EASY backfill /
// carbon-aware / power-aware), the cluster-wide GPU power cap c, and the
// enabled-node supply q_s. Each lattice point is one two-week twin run
// (June 2021); E is metered facility energy, A is completed GPU-hours.
// alpha is set to 97% of the uncontrolled baseline's activity — the paper's
// "bare minimum performance level" below which savings become perverse.
//
// Expected shape: the optimizer lands on a tightened cap (not TDP) with a
// work-conserving scheduler; over-tightened caps and heavy node shutdowns
// violate the activity floor and are rejected.

#include <algorithm>
#include <iostream>

#include "core/datacenter.hpp"
#include "core/optimization.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

/// Applies a full ControlVector to a twin run and reports (E, A).
core::Evaluation evaluate_controls(const core::ControlVector& cv) {
  class ControlledScheduler final : public sched::Scheduler {
   public:
    ControlledScheduler(std::unique_ptr<sched::Scheduler> inner, util::Power cap)
        : inner_(std::move(inner)), cap_(cap) {}
    const char* name() const override { return inner_->name(); }
    std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
      return inner_->select(ctx);
    }
    util::Power choose_cap(const sched::SchedulerContext& ctx) override {
      // The swept cap is a ceiling; greener policies may tighten further.
      return std::min(cap_, inner_->choose_cap(ctx));
    }

   private:
    std::unique_ptr<sched::Scheduler> inner_;
    util::Power cap_;
  };

  const util::MonthSpan june = util::month_span({2021, 6});
  core::DatacenterConfig config;
  config.start = june.start - util::days(5);
  core::Datacenter dc(config,
                      std::make_unique<ControlledScheduler>(core::make_scheduler(cv.policy),
                                                            cv.power_cap));
  dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
  dc.run_until(june.start);
  dc.run_until(june.start + util::days(14));

  core::Evaluation e;
  e.controls = cv;
  e.energy = dc.summary().grid_totals.energy.kilowatt_hours();
  e.activity = dc.summary().completed_gpu_hours;
  return e;
}

}  // namespace

int main() {
  util::print_banner(std::cout, "ABL-EQ1: min E s.t. A >= alpha over (policy, cap) controls");

  // Baseline: uncontrolled (backfill, TDP, all nodes).
  core::ControlVector baseline;
  baseline.policy = core::PolicyKind::kBackfill;
  baseline.power_cap = util::watts(250.0);
  const core::Evaluation base_eval = evaluate_controls(baseline);
  const double alpha = 0.97 * base_eval.activity;
  std::cout << "baseline: E = " << util::fmt_fixed(base_eval.energy / 1000.0, 1)
            << " MWh, A = " << util::fmt_fixed(base_eval.activity / 1000.0, 1)
            << " kGPU-h; activity floor alpha = 97% of baseline\n\n";

  // The control lattice: 4 policies x 5 caps (node sweep kept at full supply;
  // the q_s dimension is exercised in tests — disabling nodes under this
  // demand always violates alpha, which the optimizer correctly reports).
  std::vector<core::ControlVector> lattice;
  for (core::PolicyKind p : {core::PolicyKind::kFcfs, core::PolicyKind::kBackfill,
                             core::PolicyKind::kCarbonAware, core::PolicyKind::kPowerAware}) {
    for (double cap : {250.0, 225.0, 200.0, 175.0, 150.0}) {
      core::ControlVector cv;
      cv.policy = p;
      cv.power_cap = util::watts(cap);
      lattice.push_back(cv);
    }
  }

  const core::OptimizationResult result =
      core::grid_search(evaluate_controls, lattice, alpha, /*parallel=*/true);

  // Print the frontier sorted by energy.
  std::vector<core::Evaluation> evals = result.all;
  std::sort(evals.begin(), evals.end(),
            [](const core::Evaluation& a, const core::Evaluation& b) { return a.energy < b.energy; });
  util::Table table({"controls", "E (MWh)", "A (kGPU-h)", "feasible", "E saved vs baseline %"});
  for (const core::Evaluation& e : evals) {
    table.add(e.controls.label(), util::fmt_fixed(e.energy / 1000.0, 1),
              util::fmt_fixed(e.activity / 1000.0, 1), e.feasible(alpha) ? "yes" : "NO",
              util::fmt_fixed(100.0 * (1.0 - e.energy / base_eval.energy), 2));
  }
  std::cout << table;

  std::cout << "\nEq. 1 solution: " << result.best.controls.label() << " — E = "
            << util::fmt_fixed(result.best.energy / 1000.0, 1) << " MWh ("
            << util::fmt_fixed(100.0 * (1.0 - result.best.energy / base_eval.energy), 1)
            << "% saved) at A = " << util::fmt_fixed(result.best.activity / 1000.0, 1)
            << " kGPU-h (floor " << util::fmt_fixed(alpha / 1000.0, 1) << ")\n";

  const bool shape_ok = result.found_feasible &&
                        result.best.controls.power_cap.watts() < 250.0 &&
                        result.best.energy < base_eval.energy;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": the constrained optimum tightens the cap below TDP and saves\n"
               "          energy while holding the paper's activity floor\n";
  return shape_ok ? 0 : 1;
}
