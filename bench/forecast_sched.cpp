// FORECAST1 — Predictive vs reactive green policies, seed-paired.
//
// Sec. II-C's claim, quantified end to end: forecasting models turn reactive
// savings into planned ones. Two comparisons, each a seed-paired Monte-Carlo
// ensemble (same replica seed => same arrival stream and environment under
// either policy, so the difference column measures the policy effect):
//
//   1. Scheduling (time-shifting): carbon_aware releases flexible jobs when
//      the grid is green *now*; forecast_carbon defers only while a
//      meaningfully greener window is still reachable inside each job's
//      slack.
//   2. Routing (space-shifting): carbon_greedy prices a job at the arrival
//      tick's grid intensity; carbon_forecast prices it at the forecast
//      integrated over the job's expected runtime.
//
// The acceptance check mirrors the fleet-routing regression: the predictive
// policy's mean CO2 must not exceed its reactive counterpart's at equal
// (within 5%) delivered GPU-hours, reported as mean ± 95% CI via the
// experiment harness.
//
// Flags (for the CI bench-smoke job): --replicas N (default 20), --days D
// (default 0 = one full month), --skip-fleet.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/aggregator.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "forecast/rolling.hpp"
#include "telemetry/experiment.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

constexpr std::uint64_t kBaseSeed = 42;

struct Options {
  std::size_t replicas = 20;
  int days = 0;  // 0 = a full month
  bool skip_fleet = false;
  std::string model = "climatology";
};

struct PairedVerdict {
  telemetry::MetricStats reactive_co2;
  telemetry::MetricStats predictive_co2;
  telemetry::MetricStats saved_pct;  ///< per-seed CO2 saving, predictive vs reactive
  double hours_ratio = 0.0;
  std::size_t paired_wins = 0;
  std::size_t n = 0;
  bool pass = false;
};

std::vector<double> extract(const std::vector<experiment::ReplicaResult>& rs,
                            double (*get)(const core::RunSummary&)) {
  std::vector<double> out;
  out.reserve(rs.size());
  for (const experiment::ReplicaResult& r : rs) out.push_back(get(r.run));
  return out;
}

double co2_of(const core::RunSummary& s) { return s.grid_totals.carbon.kilograms(); }
double hours_of(const core::RunSummary& s) { return s.completed_gpu_hours; }

PairedVerdict compare(const experiment::ReplicaRunner& runner, experiment::ScenarioSpec reactive,
                      experiment::ScenarioSpec predictive) {
  const std::vector<experiment::ReplicaResult> base = runner.run(reactive);
  const std::vector<experiment::ReplicaResult> pred = runner.run(predictive);

  PairedVerdict v;
  v.n = base.size();
  const std::vector<double> base_co2 = extract(base, co2_of);
  const std::vector<double> pred_co2 = extract(pred, co2_of);
  v.reactive_co2 = experiment::Aggregator::fold(reactive.label(), base_co2);
  v.predictive_co2 = experiment::Aggregator::fold(predictive.label(), pred_co2);

  std::vector<double> saved;
  double base_hours = 0.0, pred_hours = 0.0;
  for (std::size_t k = 0; k < base.size(); ++k) {
    saved.push_back(100.0 * (1.0 - pred_co2[k] / base_co2[k]));
    if (pred_co2[k] <= base_co2[k]) ++v.paired_wins;
    base_hours += hours_of(base[k].run);
    pred_hours += hours_of(pred[k].run);
  }
  v.saved_pct = experiment::Aggregator::fold("saved_pct", saved);
  v.hours_ratio = base_hours > 0.0 ? pred_hours / base_hours : 0.0;
  v.pass = v.predictive_co2.mean <= v.reactive_co2.mean && v.hours_ratio > 0.95 &&
           v.hours_ratio < 1.05;
  return v;
}

void report(const std::string& title, const PairedVerdict& v) {
  util::Table table({"policy", "co2_kg (mean ± 95% CI)", "saved_pct", "paired_wins",
                     "gpu_hours_ratio"});
  table.add(v.reactive_co2.name, telemetry::fmt_ci(v.reactive_co2.mean, v.reactive_co2.ci95_half),
            "-", "-", "-");
  table.add(v.predictive_co2.name,
            telemetry::fmt_ci(v.predictive_co2.mean, v.predictive_co2.ci95_half),
            telemetry::fmt_ci(v.saved_pct.mean, v.saved_pct.ci95_half),
            std::to_string(v.paired_wins) + "/" + std::to_string(v.n),
            util::fmt_fixed(v.hours_ratio, 4));
  std::cout << title << ":\n" << table
            << (v.pass ? "PASS" : "FAIL")
            << ": predictive mean CO2 <= reactive at equal (within 5%) GPU-hours\n\n";
}

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replicas" && i + 1 < argc) {
      const int replicas = std::atoi(argv[++i]);
      if (replicas < 1) {
        std::cerr << "error: --replicas must be >= 1\n";
        std::exit(2);
      }
      opts.replicas = static_cast<std::size_t>(replicas);
    } else if (arg == "--days" && i + 1 < argc) {
      opts.days = std::atoi(argv[++i]);
      if (opts.days < 0) {
        std::cerr << "error: --days must be >= 0\n";
        std::exit(2);
      }
    } else if (arg == "--skip-fleet") {
      opts.skip_fleet = true;
    } else if (arg == "--model" && i + 1 < argc) {
      opts.model = argv[++i];
      if (!forecast::model_known(opts.model)) {
        std::cerr << "error: unknown forecast model '" << opts.model << "' ("
                  << forecast::model_names() << ")\n";
        std::exit(2);
      }
    } else {
      std::cerr << "usage: forecast_sched [--replicas N] [--days D] [--model NAME] "
                   "[--skip-fleet]\n";
      std::exit(2);
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse(argc, argv);
  util::print_banner(std::cout, "FORECAST1: predictive vs reactive green policies");
  std::cout << opts.replicas << " seed-paired replicas per policy, base seed " << kBaseSeed
            << ", mean ± 95% CI\n\n";

  const experiment::ReplicaRunner runner({opts.replicas, kBaseSeed, 0});

  // --- 1. scheduling: carbon_aware vs forecast_carbon ------------------------
  experiment::ScenarioSpec sched_base;
  sched_base.name = "forecast_sched_bench";
  sched_base.start = {2021, 4};
  sched_base.rate_per_hour = 9.0;  // headroom so time-shifting can act
  if (opts.days > 0) {
    sched_base.days = opts.days;
    sched_base.warmup_days = 2;
  }
  experiment::ScenarioSpec sched_pred = sched_base;
  sched_base.scheduler = core::PolicyKind::kCarbonAware;
  sched_pred.scheduler = core::PolicyKind::kForecastCarbon;
  sched_pred.forecast_model = opts.model;
  const PairedVerdict sched_v = compare(runner, sched_base, sched_pred);
  report("scheduling: reactive green windows vs forecast-planned deferral", sched_v);

  bool all_pass = sched_v.pass;

  // --- 2. routing: carbon_greedy vs carbon_forecast --------------------------
  if (!opts.skip_fleet) {
    experiment::ScenarioSpec route_base;
    route_base.name = "forecast_router_bench";
    route_base.mode = experiment::Mode::kFleet;
    route_base.start = {2021, 7};
    // Hot fleet (reference-site pressure on every region): with light load
    // both routers make identical greedy picks, because grid signals are
    // persistent enough that the arrival tick's intensity is already a
    // strong estimator. The forecast's edge is *backlog placement* — when no
    // region can start a job now, carbon_greedy falls back to pure least
    // pressure while carbon_forecast weighs where the queue will drain
    // greenest — and that path only exercises under congestion.
    route_base.rate_per_hour = 16.0;
    if (opts.days > 0) {
      route_base.days = opts.days;
      route_base.warmup_days = 2;
    }
    experiment::ScenarioSpec route_pred = route_base;
    route_base.router = "carbon_greedy";
    route_pred.router = "carbon_forecast";
    route_pred.forecast_model = opts.model;
    const PairedVerdict route_v = compare(runner, route_base, route_pred);
    report("routing: instantaneous greedy vs forecast-integrated", route_v);
    all_pass = all_pass && route_v.pass;
  }

  return all_pass ? 0 : 1;
}
