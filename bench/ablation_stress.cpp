// ABL-STRESS — Dodd-Frank-style weatherization stress tests (Sec. II-B).
//
// "a useful exercise can be a regularly conducted stress-test akin to the
// Dodd-Frank stress tests ... for not just regular datacenter/HPC operations
// but also for climate and weather resiliency."
//
// Expected shape: without weatherization investment, heat scenarios produce
// throttle hours and unserved compute that climb steeply with severity;
// with full weatherization the same scenarios stay near zero. Price spikes
// cost money at any investment level (the plant can't fix the market), and
// renewable droughts mostly show up as extra carbon.

#include <iostream>

#include "core/stress.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "ABL-STRESS: weatherization stress-test battery (July 2021)");

  core::StressConfig config;
  config.replicas = 3;
  const core::StressTester tester(config);

  util::Table table({"scenario", "weatherization", "throttle (h)", "unserved kGPU-h",
                     "peak PUE", "extra cost $", "extra CO2 (kg)"});

  double heat_throttle_raw = 0.0, heat_throttle_invested = 0.0;
  double extreme_unserved_raw = 0.0, extreme_unserved_invested = 0.0;

  for (double level : {0.0, 1.0}) {
    for (core::ScenarioKind scenario :
         {core::ScenarioKind::kHeatWave, core::ScenarioKind::kExtremeHeatWave,
          core::ScenarioKind::kWarmedClimate, core::ScenarioKind::kCoolingDegradation,
          core::ScenarioKind::kPriceSpike, core::ScenarioKind::kRenewableDrought}) {
      const core::StressOutcome o = tester.run(scenario, level);
      table.add(core::scenario_name(scenario), util::fmt_fixed(level, 1),
                util::fmt_fixed(o.throttle_hours, 1),
                util::fmt_fixed(o.unserved_gpu_hours / 1000.0, 2),
                util::fmt_fixed(o.peak_pue, 3), util::fmt_fixed(o.extra_cost_usd, 0),
                util::fmt_fixed(o.extra_carbon_kg, 0));
      if (scenario == core::ScenarioKind::kExtremeHeatWave) {
        if (level == 0.0) {
          heat_throttle_raw = o.throttle_hours;
          extreme_unserved_raw = o.unserved_gpu_hours;
        } else {
          heat_throttle_invested = o.throttle_hours;
          extreme_unserved_invested = o.unserved_gpu_hours;
        }
      }
    }
  }
  std::cout << table;

  std::cout << "\nRemediation identified (the stress test's purpose): extreme heat wave\n"
            << "  throttle hours:  " << util::fmt_fixed(heat_throttle_raw, 1) << " -> "
            << util::fmt_fixed(heat_throttle_invested, 1) << " with full weatherization\n"
            << "  unserved GPU-h:  " << util::fmt_fixed(extreme_unserved_raw, 0) << " -> "
            << util::fmt_fixed(extreme_unserved_invested, 0) << "\n";

  const bool shape_ok = heat_throttle_raw > heat_throttle_invested;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": weatherization investment flattens the heat-stress response\n";
  return shape_ok ? 0 : 1;
}
