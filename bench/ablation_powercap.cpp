// ABL-CAP — GPU power-cap sweep (Sec. II-C, via Frey et al. [15]).
//
// "optimal GPU power-caps provide an effective way to control energy
// consumption with minimal impact on training speed."
//
// Part 1 sweeps the device model: expected knee shape — ~10% energy saved at
// 200 W for <=3% slowdown on a V100-class part (250 W TDP), with savings
// flattening and slowdown blowing up below ~150 W.
// Part 2 validates on the full twin: a month of cluster time under each
// fixed cap, reporting facility energy, completed work, and queue impact.

#include <iostream>
#include <memory>

#include "core/datacenter.hpp"
#include "power/gpu_power.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

/// Backfill scheduling with a fixed cluster-wide cap (the sweep variable).
class FixedCapScheduler final : public sched::Scheduler {
 public:
  explicit FixedCapScheduler(util::Power cap) : cap_(cap) {}
  [[nodiscard]] const char* name() const override { return "fixed_cap"; }
  [[nodiscard]] std::vector<cluster::JobId> select(const sched::SchedulerContext& ctx) override {
    return inner_.select(ctx);
  }
  [[nodiscard]] util::Power choose_cap(const sched::SchedulerContext&) override { return cap_; }

 private:
  util::Power cap_;
  sched::EasyBackfillScheduler inner_;
};

}  // namespace

int main() {
  util::print_banner(std::cout, "ABL-CAP: GPU power-cap sweep (Frey et al. [15] shape)");

  const power::GpuPowerModel model;

  std::cout << "Device model sweep (V100-class: 250 W TDP, ~230 W natural draw):\n\n";
  util::Table sweep({"cap (W)", "throughput", "slowdown %", "energy/work vs uncapped",
                     "energy saved %"});
  for (double w : {250.0, 225.0, 200.0, 187.5, 175.0, 162.5, 150.0, 137.5, 125.0}) {
    const util::Power cap = util::watts(w);
    const double tput = model.throughput_factor(cap);
    const double epw = model.relative_energy_per_work(cap);
    sweep.add(util::fmt_fixed(w, 0), util::fmt_fixed(tput, 3),
              util::fmt_fixed(100.0 * (1.0 - tput), 1), util::fmt_fixed(epw, 3),
              util::fmt_fixed(100.0 * (1.0 - epw), 1));
  }
  std::cout << sweep;

  const util::Power opt3 = model.optimal_cap(0.03);
  const util::Power opt10 = model.optimal_cap(0.10);
  std::cout << "\noptimal cap @ <=3% slowdown:  " << util::fmt_fixed(opt3.watts(), 0) << " W ("
            << util::fmt_fixed(100.0 * (1.0 - model.relative_energy_per_work(opt3)), 1)
            << "% energy saved)\n";
  std::cout << "optimal cap @ <=10% slowdown: " << util::fmt_fixed(opt10.watts(), 0) << " W ("
            << util::fmt_fixed(100.0 * (1.0 - model.relative_energy_per_work(opt10)), 1)
            << "% energy saved)\n";

  std::cout << "\nFull-twin validation (July 2021, fixed cluster-wide caps):\n\n";
  util::Table twin({"cap (W)", "facility MWh", "completed kGPU-h", "mean wait (h)",
                    "kWh per GPU-h", "energy saved %"});
  double baseline_kwh_per_gpuh = 0.0;
  const util::MonthSpan july = util::month_span({2021, 7});
  for (double w : {250.0, 225.0, 200.0, 175.0, 150.0}) {
    core::DatacenterConfig config;
    config.start = july.start - util::days(7);
    core::Datacenter dc(config, std::make_unique<FixedCapScheduler>(util::watts(w)));
    dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    dc.run_until(july.start);
    dc.run_until(july.end);
    const core::RunSummary s = dc.summary();
    const double kwh_per_gpuh =
        s.grid_totals.energy.kilowatt_hours() / std::max(1.0, s.completed_gpu_hours);
    if (w == 250.0) baseline_kwh_per_gpuh = kwh_per_gpuh;
    twin.add(util::fmt_fixed(w, 0), util::fmt_fixed(s.grid_totals.energy.megawatt_hours(), 1),
             util::fmt_fixed(s.completed_gpu_hours / 1000.0, 1),
             util::fmt_fixed(s.mean_queue_wait_hours, 2), util::fmt_fixed(kwh_per_gpuh, 3),
             util::fmt_fixed(100.0 * (1.0 - kwh_per_gpuh / baseline_kwh_per_gpuh), 1));
  }
  std::cout << twin;

  const double tput200 = model.throughput_factor(util::watts(200.0));
  const double saved200 = 1.0 - model.relative_energy_per_work(util::watts(200.0));
  const bool shape_ok = (1.0 - tput200) <= 0.05 && saved200 >= 0.07 && saved200 <= 0.20;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": ~10% energy saved at 200 W for <=5% slowdown, knee below ~175 W\n";
  return shape_ok ? 0 : 1;
}
