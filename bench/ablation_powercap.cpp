// ABL-CAP — GPU power-cap sweep (Sec. II-C, via Frey et al. [15]).
//
// "optimal GPU power-caps provide an effective way to control energy
// consumption with minimal impact on training speed."
//
// Part 1 sweeps the device model: expected knee shape — ~10% energy saved at
// 200 W for <=3% slowdown on a V100-class part (250 W TDP), with savings
// flattening and slowdown blowing up below ~150 W.
// Part 2 validates on the full twin: a month of cluster time under each
// fixed cap, reporting facility energy, completed work, and queue impact.

// Part 2 reports Monte-Carlo ensembles (mean ± 95% CI over independently
// seeded replicas of the experiment harness); the energy-saved column is
// seed-paired against the same replica's uncapped run, so it isolates the
// cap effect from workload draw.

#include <iostream>
#include <memory>
#include <vector>

#include "core/datacenter.hpp"
#include "experiment/aggregator.hpp"
#include "experiment/runner.hpp"
#include "power/gpu_power.hpp"
#include "telemetry/experiment.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

constexpr std::uint64_t kBaseSeed = 42;
constexpr std::size_t kReplicas = 6;

/// One cap point of the twin validation: a July-2021 ensemble built from the
/// experiment harness's powercap scenario axis.
std::vector<experiment::ReplicaResult> run_cap_ensemble(double cap_w) {
  experiment::ScenarioSpec spec;
  spec.name = "powercap_ablation";
  spec.start = {2021, 7};
  spec.power_cap_w = cap_w;
  const experiment::ReplicaRunner runner({kReplicas, kBaseSeed, 0});
  return runner.run(spec);
}

double kwh_per_gpuh(const core::RunSummary& s) {
  return s.grid_totals.energy.kilowatt_hours() / std::max(1.0, s.completed_gpu_hours);
}

}  // namespace

int main() {
  util::print_banner(std::cout, "ABL-CAP: GPU power-cap sweep (Frey et al. [15] shape)");

  const power::GpuPowerModel model;

  std::cout << "Device model sweep (V100-class: 250 W TDP, ~230 W natural draw):\n\n";
  util::Table sweep({"cap (W)", "throughput", "slowdown %", "energy/work vs uncapped",
                     "energy saved %"});
  for (double w : {250.0, 225.0, 200.0, 187.5, 175.0, 162.5, 150.0, 137.5, 125.0}) {
    const util::Power cap = util::watts(w);
    const double tput = model.throughput_factor(cap);
    const double epw = model.relative_energy_per_work(cap);
    sweep.add(util::fmt_fixed(w, 0), util::fmt_fixed(tput, 3),
              util::fmt_fixed(100.0 * (1.0 - tput), 1), util::fmt_fixed(epw, 3),
              util::fmt_fixed(100.0 * (1.0 - epw), 1));
  }
  std::cout << sweep;

  const util::Power opt3 = model.optimal_cap(0.03);
  const util::Power opt10 = model.optimal_cap(0.10);
  std::cout << "\noptimal cap @ <=3% slowdown:  " << util::fmt_fixed(opt3.watts(), 0) << " W ("
            << util::fmt_fixed(100.0 * (1.0 - model.relative_energy_per_work(opt3)), 1)
            << "% energy saved)\n";
  std::cout << "optimal cap @ <=10% slowdown: " << util::fmt_fixed(opt10.watts(), 0) << " W ("
            << util::fmt_fixed(100.0 * (1.0 - model.relative_energy_per_work(opt10)), 1)
            << "% energy saved)\n";

  std::cout << "\nFull-twin validation (July 2021, fixed cluster-wide caps, " << kReplicas
            << " replicas per cap, mean ± 95% CI):\n\n";
  util::Table twin({"cap (W)", "facility MWh", "completed kGPU-h", "mean wait (h)",
                    "kWh per GPU-h", "energy saved %"});
  std::vector<experiment::ReplicaResult> baseline;  // uncapped (250 W = TDP)
  for (double w : {250.0, 225.0, 200.0, 175.0, 150.0}) {
    const std::vector<experiment::ReplicaResult> ensemble = run_cap_ensemble(w);
    if (w == 250.0) baseline = ensemble;

    std::vector<double> mwh, kgpuh, wait, intensity, saved;
    for (std::size_t k = 0; k < ensemble.size(); ++k) {
      const core::RunSummary& s = ensemble[k].run;
      mwh.push_back(s.grid_totals.energy.megawatt_hours());
      kgpuh.push_back(s.completed_gpu_hours / 1000.0);
      wait.push_back(s.mean_queue_wait_hours);
      intensity.push_back(kwh_per_gpuh(s));
      // Seed-paired: replica k under this cap vs replica k uncapped.
      saved.push_back(100.0 * (1.0 - kwh_per_gpuh(s) / kwh_per_gpuh(baseline[k].run)));
    }
    using experiment::Aggregator;
    const telemetry::MetricStats m_mwh = Aggregator::fold("mwh", mwh);
    const telemetry::MetricStats m_kgpuh = Aggregator::fold("kgpuh", kgpuh);
    const telemetry::MetricStats m_wait = Aggregator::fold("wait", wait);
    const telemetry::MetricStats m_int = Aggregator::fold("intensity", intensity);
    const telemetry::MetricStats m_saved = Aggregator::fold("saved", saved);
    twin.add(util::fmt_fixed(w, 0), telemetry::fmt_ci(m_mwh.mean, m_mwh.ci95_half, 1),
             telemetry::fmt_ci(m_kgpuh.mean, m_kgpuh.ci95_half, 1),
             telemetry::fmt_ci(m_wait.mean, m_wait.ci95_half, 2),
             telemetry::fmt_ci(m_int.mean, m_int.ci95_half, 3),
             telemetry::fmt_ci(m_saved.mean, m_saved.ci95_half, 1));
  }
  std::cout << twin;

  const double tput200 = model.throughput_factor(util::watts(200.0));
  const double saved200 = 1.0 - model.relative_energy_per_work(util::watts(200.0));
  const bool shape_ok = (1.0 - tput200) <= 0.05 && saved200 >= 0.07 && saved200 <= 0.20;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": ~10% energy saved at 200 W for <=5% slowdown, knee below ~175 W\n";
  return shape_ok ? 0 : 1;
}
