// PERF — Engineering benchmarks of the simulator itself.
//
// Not a paper figure: tracks the cost of the substrate so year-scale
// experiment sweeps stay cheap (the reproducibility agenda of Sec. IV-A cuts
// both ways — wasteful simulators waste energy too, the core thesis of Green
// AI applied to this artifact). Self-timed with std::chrono rather than
// google-benchmark so the binary always builds and can gate CI: it merges its
// measurements into BENCH_PERF.json and, given --floor, fails on a >25%
// steps/sec regression versus the committed floor.
//
//   perf_simulator [--days N] [--repeat R] [--json PATH] [--floor PATH]
//
// Metrics (all best-of-R, higher is better):
//   event_engine_events_per_s          raw simulation-engine dispatch rate
//   single_site_steps_per_s            reference twin, EASY backfill
//   fleet_reactive_steps_per_s         4 regions, carbon_greedy, no migration
//   fleet_forecast_migration_steps_per_s  the flagship: 4 regions,
//       carbon_forecast router + carbon migration planner (the hottest
//       configuration the repo ships — one step runs 4 twins, the forecaster
//       hub, admission routing, and the migration planner)

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "experiment/scenario.hpp"
#include "obs/manifest.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace greenhpc;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Steps per 15-minute-cadence day.
constexpr double kStepsPerDay = 96.0;

double bench_event_engine() {
  constexpr int kEvents = 200000;
  sim::Simulation sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    sim.schedule_at(util::TimePoint::from_seconds(static_cast<double>(i)),
                    [&fired](sim::Simulation&) { ++fired; });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_all();
  const double elapsed = seconds_since(t0);
  if (fired != kEvents) std::cerr << "event engine dropped events\n";
  return static_cast<double>(kEvents) / elapsed;
}

double bench_single_site(int days) {
  experiment::ScenarioSpec spec;
  spec.name = "perf_single";
  spec.days = days;
  spec.warmup_days = 0;
  const std::uint64_t seed = 42;
  const auto dc = experiment::make_single_site(spec, seed);
  const auto t0 = std::chrono::steady_clock::now();
  dc->run_until(spec.window_end());
  return static_cast<double>(days) * kStepsPerDay / seconds_since(t0);
}

/// Every load-bearing summary double in hexfloat: two runs whose digests
/// match produced bit-identical simulated results.
std::string fleet_digest(const telemetry::FleetRunSummary& s) {
  std::ostringstream out;
  out << std::hexfloat;
  const auto ledger = [&out](const grid::EnergyLedger& l) {
    out << ' ' << l.energy.joules() << ' ' << l.cost.dollars() << ' ' << l.carbon.kilograms()
        << ' ' << l.water.liters();
  };
  const auto run = [&](const core::RunSummary& r) {
    out << ' ' << r.jobs_submitted << ' ' << r.jobs_completed << ' ' << r.jobs_pending << ' '
        << r.jobs_migrated << ' ' << r.mean_queue_wait_hours << ' ' << r.completed_gpu_hours
        << ' ' << r.mean_utilization << ' ' << r.mean_pue;
    ledger(r.grid_totals);
  };
  run(s.total);
  ledger(s.transfer);
  out << ' ' << s.migration.started << ' ' << s.migration.delivered;
  for (const telemetry::RegionRunSummary& r : s.regions) {
    out << ' ' << r.name << ' ' << r.jobs_routed << ' ' << r.jobs_migrated_in << ' '
        << r.jobs_migrated_out;
    run(r.run);
    ledger(r.transfer);
  }
  return out.str();
}

double bench_fleet(int days, const std::string& router, const std::string& migration,
                   std::size_t regions = 4, std::size_t step_jobs = 1,
                   std::string* digest = nullptr) {
  // The flagship fleet configuration: the migration scenario's hot-summer
  // window (jobs routinely start on a dirty grid) at a shorter horizon.
  experiment::ScenarioSpec spec;
  spec.name = "perf_fleet";
  spec.mode = experiment::Mode::kFleet;
  spec.region_count = regions;
  spec.router = router;
  spec.migration_policy = migration;
  spec.start = {2021, 7};
  spec.rate_per_hour = 14.0;
  spec.days = days;
  spec.warmup_days = 0;
  spec.step_jobs = step_jobs;
  const std::uint64_t seed = 42;
  const auto fleet = experiment::make_fleet(spec, seed);
  const auto t0 = std::chrono::steady_clock::now();
  fleet->run_until(spec.window_end());
  const double rate = static_cast<double>(days) * kStepsPerDay / seconds_since(t0);
  if (digest != nullptr) *digest = fleet_digest(fleet->summary());
  return rate;
}

template <typename Fn>
double best_of(int repeat, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) best = std::max(best, fn());
  return best;
}

/// Where does a flagship step spend its time? One instrumented run of the
/// forecast+migration fleet with the flight recorder's phase profiler on
/// (trace and metrics off — profiling alone is the cheapest configuration),
/// reported as per-phase shares so future perf PRs cite an in-tree
/// breakdown instead of external ad-hoc profiling.
void bench_phase_breakdown(int days, std::map<std::string, double>& results) {
  experiment::ScenarioSpec spec;
  spec.name = "perf_phases";
  spec.mode = experiment::Mode::kFleet;
  spec.region_count = 4;
  spec.router = "carbon_forecast";
  spec.migration_policy = "carbon";
  spec.start = {2021, 7};
  spec.rate_per_hour = 14.0;
  spec.days = days;
  spec.warmup_days = 0;
  const auto fleet = experiment::make_fleet(spec, 42);
  obs::FlightRecorder recorder({/*metrics=*/false, /*trace=*/false, /*profile=*/true});
  fleet->set_recorder(&recorder);
  fleet->run_until(spec.window_end());

  const obs::PhaseProfiler& profiler = recorder.profiler();
  const double total = profiler.total_seconds();
  std::cout << "\nflagship step-phase breakdown (" << days << " day(s), profiled run):\n"
            << profiler.render();
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    const obs::Phase phase = static_cast<obs::Phase>(p);
    const double share =
        total > 0.0 ? 100.0 * profiler.stats(phase).wall_seconds / total : 0.0;
    results[std::string("flagship_phase_") + obs::phase_name(phase) + "_pct"] = share;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench_start = std::chrono::steady_clock::now();
  int days = 30;
  int repeat = 3;
  std::string json_path = "BENCH_PERF.json";
  std::string floor_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      days = std::stoi(next());
    } else if (arg == "--repeat") {
      repeat = std::stoi(next());
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--floor") {
      floor_path = next();
    } else {
      std::cerr << "usage: perf_simulator [--days N] [--repeat R] [--json PATH] "
                   "[--floor PATH]\n";
      return 2;
    }
  }

  util::print_banner(std::cout, "PERF: simulator substrate benchmarks");
  std::cout << "window: " << days << " simulated day(s) per run, best of " << repeat << "\n\n";

  std::map<std::string, double> results;
  results["event_engine_events_per_s"] = best_of(repeat, [] { return bench_event_engine(); });
  results["single_site_steps_per_s"] = best_of(repeat, [&] { return bench_single_site(days); });
  results["fleet_reactive_steps_per_s"] =
      best_of(repeat, [&] { return bench_fleet(days, "carbon_greedy", "off"); });
  results["fleet_forecast_migration_steps_per_s"] =
      best_of(repeat, [&] { return bench_fleet(days, "carbon_forecast", "carbon"); });

  // --- region-parallel scaling (the 100+-region configurations) -------------
  // The flagship config at 32 and 128 regions, serial vs pool-sharded
  // stepping. The digests must match bit-for-bit — step_jobs is a wall-clock
  // knob only — so this section is also a correctness gate, not just a
  // throughput curve. Short windows keep it affordable: the metric is
  // steps/s, which is window-independent.
  bool identity_ok = true;
  const std::size_t pool_threads = util::shared_pool().thread_count();
  for (const std::size_t regions : {std::size_t{32}, std::size_t{128}}) {
    const int scale_days = std::max(1, days / static_cast<int>(regions / 8));
    std::string serial_digest, parallel_digest;
    const double serial = best_of(std::min(repeat, 2), [&] {
      return bench_fleet(scale_days, "carbon_forecast", "carbon", regions, 1, &serial_digest);
    });
    const double parallel = best_of(std::min(repeat, 2), [&] {
      return bench_fleet(scale_days, "carbon_forecast", "carbon", regions, 0, &parallel_digest);
    });
    const std::string prefix = "fleet_" + std::to_string(regions) + "region_";
    results[prefix + "serial_steps_per_s"] = serial;
    results[prefix + "parallel_steps_per_s"] = parallel;
    std::cout << "[scaling] " << regions << " regions (" << scale_days << " day(s)): serial "
              << util::fmt_fixed(serial, 1) << " steps/s, parallel (" << pool_threads
              << " pool thread(s)) " << util::fmt_fixed(parallel, 1) << " steps/s, speedup "
              << util::fmt_fixed(parallel / serial, 2) << "x\n";
    if (serial_digest == parallel_digest) {
      std::cout << "[scaling] OK: " << regions
                << "-region parallel summary bit-identical to serial\n";
    } else {
      std::cout << "[scaling] FAIL: " << regions
                << "-region parallel summary diverged from serial (bit-identity broken)\n";
      identity_ok = false;
    }
  }
  std::cout << "\n";

  util::Table table({"metric", "per_second"});
  for (const auto& [key, value] : results) table.add(key, util::fmt_fixed(value, 1));
  std::cout << table;

  bench_phase_breakdown(days, results);

  obs::RunManifest manifest = obs::make_manifest("perf_simulator");
  manifest.scenario = "perf/" + std::to_string(days) + "d";
  manifest.seed = 42;
  manifest.wall_seconds = seconds_since(bench_start);
  bench::merge_perf_json(json_path, results, manifest.to_json());
  std::cout << "\nwrote " << json_path << "\n";

  // CI regression gate: each floored metric must hold >= 75% of its
  // committed floor. Floors are deliberately conservative (set well below a
  // healthy run on the reference machine) so noisy CI neighbors do not
  // flake the job, while a real 25%+ collapse of the step loop still fails.
  bool ok = true;
  if (!floor_path.empty()) {
    const std::map<std::string, double> floor = bench::read_perf_json(floor_path);
    if (floor.empty()) {
      std::cerr << "floor file " << floor_path << " missing or empty\n";
      return 2;
    }
    for (const auto& [key, min_value] : floor) {
      const auto it = results.find(key);
      if (it == results.end()) {
        // A floored metric that was not measured means the gate quietly
        // stopped gating (e.g. a rename drifted from perf_floor.json) —
        // that must fail loudly, not pass silently.
        std::cout << "[floor] FAIL: " << key << " in " << floor_path
                  << " was not measured (renamed metric?)\n";
        ok = false;
        continue;
      }
      const bool pass = it->second >= 0.75 * min_value;
      std::cout << "[floor] " << (pass ? "OK" : "FAIL") << ": " << key << " = "
                << util::fmt_fixed(it->second, 1) << " vs floor " << util::fmt_fixed(min_value, 1)
                << " (min allowed " << util::fmt_fixed(0.75 * min_value, 1) << ")\n";
      ok = ok && pass;
    }
  }
  return ok && identity_ok ? 0 : 1;
}
