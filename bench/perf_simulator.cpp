// PERF — Engineering benchmarks of the simulator itself (google-benchmark).
//
// Not a paper figure: tracks the cost of the substrate so year-scale
// experiment sweeps stay cheap (the reproducibility agenda of Sec. IV-A cuts
// both ways — wasteful simulators waste energy too).

#include <benchmark/benchmark.h>

#include <memory>

#include "core/datacenter.hpp"
#include "grid/fuel_mix.hpp"
#include "sim/engine.hpp"

using namespace greenhpc;

namespace {

void BM_EventEngine(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t fired = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(util::TimePoint::from_seconds(static_cast<double>(i)),
                      [&fired](sim::Simulation&) { ++fired; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventEngine);

void BM_FuelMixQuery(benchmark::State& state) {
  const grid::FuelMixModel mix;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.mix_at(util::TimePoint::from_seconds(t)).renewable_share());
    t += 3600.0;
  }
}
BENCHMARK(BM_FuelMixQuery);

void BM_DatacenterWeek(benchmark::State& state) {
  for (auto _ : state) {
    core::DatacenterConfig config;
    core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
    dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    dc.run_until(util::TimePoint::from_seconds(7.0 * 86400.0));
    benchmark::DoNotOptimize(dc.summary().jobs_completed);
  }
  state.SetLabel("one simulated week, 15-min steps");
}
BENCHMARK(BM_DatacenterWeek)->Unit(benchmark::kMillisecond);

void BM_DatacenterMonth_Backfill(benchmark::State& state) {
  for (auto _ : state) {
    core::DatacenterConfig config;
    core::Datacenter dc(config, std::make_unique<sched::EasyBackfillScheduler>());
    dc.attach_arrivals(workload::ArrivalConfig{}, workload::DeadlineCalendar::standard());
    dc.run_until(util::TimePoint::from_seconds(31.0 * 86400.0));
    benchmark::DoNotOptimize(dc.summary().jobs_completed);
  }
  state.SetLabel("one simulated month");
}
BENCHMARK(BM_DatacenterMonth_Backfill)->Unit(benchmark::kMillisecond);

}  // namespace
