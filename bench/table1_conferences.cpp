// TAB1 — List of notable conferences (paper Table I).
//
// Prints the conference dataset grouped by area exactly as the paper tables
// it, plus the per-month deadline concentration the Fig. 5 analysis uses.

#include <iostream>
#include <map>

#include "util/table.hpp"
#include "workload/conferences.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "TABLE I: List of notable conferences");

  // Group venue names by area, paper-style.
  std::map<workload::Area, std::string> by_area;
  for (const workload::Conference& c : workload::conference_table()) {
    std::string& row = by_area[c.area];
    if (!row.empty()) row += ", ";
    row += c.name;
  }
  util::Table table({"Area/Discipline", "Conferences"});
  for (const auto& [area, names] : by_area) table.add(workload::area_name(area), names);
  std::cout << table;

  std::cout << "\nDeadline concentration by month (drives the Fig. 5 demand signal):\n\n";
  const workload::DeadlineCalendar calendar = workload::DeadlineCalendar::standard();
  util::Table counts({"month", "2020 deadlines", "2021 deadlines"});
  int total20 = 0, total21 = 0;
  for (int m = 1; m <= 12; ++m) {
    const int c20 = calendar.monthly_count({2020, m});
    const int c21 = calendar.monthly_count({2021, m});
    counts.add(util::month_name(m), c20, c21);
    total20 += c20;
    total21 += c21;
  }
  counts.add("total", total20, total21);
  std::cout << counts;

  std::cout << "\nVenues: " << workload::conference_table().size()
            << " (paper lists ~40 across five areas; dates are curated\n"
               "approximations of the 2020/2021 CFPs — see DESIGN.md)\n";
  return 0;
}
