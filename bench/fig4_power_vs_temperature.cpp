// FIG4 — Power Consumption vs. Temperature (paper Fig. 4).
//
// "Average monthly power consumption of MIT Supercloud plotted against
// monthly average temperature (in Fahrenheit). Note the near one-to-one
// relationship between temperature and power consumption."
//
// Expected shape: rank-monotone power/temperature relation (Spearman near 1)
// with a positive kW-per-degree regression slope from the cooling plant.

#include <iostream>

#include "bench_common.hpp"
#include "stats/correlation.hpp"
#include "stats/regression.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "FIG 4: Power consumption vs. temperature");

  const auto dc = bench::run_reference_window();
  const auto months = dc->monthly_power().months();
  const auto power_kw = dc->monthly_power().means();

  std::vector<double> temp_f;
  temp_f.reserve(months.size());
  for (const util::MonthKey& m : months)
    temp_f.push_back(dc->weather().monthly_average(m).fahrenheit());

  const auto power_by_month = bench::month_of_year_means(months, power_kw);
  const auto temp_by_month = bench::month_of_year_means(months, temp_f);

  util::Table table({"month", "avg power (kW)", "avg temperature (F)"});
  for (int m = 0; m < 12; ++m) {
    table.add(util::month_name(m + 1), util::fmt_fixed(power_by_month[static_cast<std::size_t>(m)], 1),
              util::fmt_fixed(temp_by_month[static_cast<std::size_t>(m)], 1));
  }
  std::cout << table;

  const double spearman = stats::spearman(temp_by_month, power_by_month);
  const double comono = stats::comonotonicity(temp_by_month, power_by_month);
  const stats::SimpleFit fit = stats::linear_fit(temp_by_month, power_by_month);

  std::cout << "\nSpearman(temperature, power)   = " << util::fmt_fixed(spearman, 3)
            << "  (paper: \"near one-to-one relationship\")\n";
  std::cout << "co-monotone month transitions  = " << util::fmt_fixed(100.0 * comono, 1) << "%\n";
  std::cout << "OLS: power = " << util::fmt_fixed(fit.intercept, 1) << " + "
            << util::fmt_fixed(fit.slope, 2) << " * T_F   (R^2 = "
            << util::fmt_fixed(fit.r_squared, 3) << ")\n";

  const bool shape_ok = spearman > 0.8 && fit.slope > 0.0 && fit.r_squared > 0.6;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": warmer months draw more power through the cooling plant\n";
  return shape_ok ? 0 : 1;
}
