// FIG1 — "Modern AI's Computational Demands" (paper Fig. 1).
//
// Regenerates the OpenAI/Economist chart the paper opens with: training
// compute of landmark systems 1958-2020 on a log scale, with the two-era
// doubling-time fits. Expected shape: a ~2-year (Moore) doubling before
// 2012 and a ~3.4-month doubling after, i.e. >5 orders of magnitude within
// the 2012-2018 window. Also prints the energy translation at V100-class
// efficiency — the "ever-mounting energy footprint" the paper argues from.

#include <cstdio>
#include <iostream>

#include "stats/regression.hpp"
#include "util/table.hpp"
#include "workload/training_model.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "FIG 1: Modern AI's computational demands");

  const workload::ComputeTrendModel trend;

  util::Table table({"system", "year", "compute (PF/s-days)", "training energy (kWh @20 GFLOPS/W)"});
  for (const workload::LandmarkSystem& s : trend.systems()) {
    table.add(s.name, util::fmt_fixed(s.year, 1), util::fmt_sci(s.petaflop_s_days, 3),
              util::fmt_sci(workload::ComputeTrendModel::energy_kwh(s.petaflop_s_days), 3));
  }
  std::cout << table;

  const stats::DoublingFit first = trend.first_era();
  const stats::DoublingFit modern = trend.modern_era();

  std::cout << "\nEra fits (log2-linear regression):\n";
  std::printf("  1958-2011 (\"Moore\" era):  doubling every %5.1f months  (R^2 = %.3f)\n",
              first.doubling_time, first.r_squared);
  std::printf("  2012-2018 (modern era):   doubling every %5.1f months  (R^2 = %.3f)\n",
              modern.doubling_time, modern.r_squared);
  std::printf("  speed-up of the trend:    %.0fx faster doubling\n",
              first.doubling_time / modern.doubling_time);

  const double growth_2012_2018 = trend.project(modern, 2018.0) / trend.project(modern, 2012.0);
  std::printf("  implied growth 2012-2018: %.1e x (paper: >300,000x era growth)\n",
              growth_2012_2018);

  std::cout << "\nProjection under the modern-era trend (illustrative, the paper's\n"
               "\"worrying trends ... likely to only accelerate\"):\n";
  util::Table proj({"year", "compute (PF/s-days)", "energy (GWh @20 GFLOPS/W)"});
  for (double year : {2020.0, 2022.0, 2024.0}) {
    const double pfd = trend.project(modern, year);
    proj.add(util::fmt_fixed(year, 0), util::fmt_sci(pfd, 3),
             util::fmt_sci(workload::ComputeTrendModel::energy_kwh(pfd) / 1e6, 3));
  }
  std::cout << proj;

  std::cout << "\n[verdict] modern-era doubling "
            << (modern.doubling_time < 6.0 && modern.doubling_time > 2.0 ? "≈3-5 months: SHAPE OK"
                                                                         : "OUT OF BAND")
            << "; pre-2012 doubling "
            << (first.doubling_time > 18.0 && first.doubling_time < 30.0 ? "≈2 years: SHAPE OK"
                                                                         : "OUT OF BAND")
            << "\n";
  return 0;
}
