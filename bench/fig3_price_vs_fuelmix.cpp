// FIG3 — Energy Prices vs. Green Fuel Mix (paper Fig. 3).
//
// "Average monthly energy prices plotted against monthly average percentage
// of supplied total energy derived from solar and wind (2020-21). Prices are
// monthly locational marginal prices (LMP) from south eastern/central MA.
// Note that energy prices tend to be lower when percentage of sustainable
// energy is higher."
//
// Expected shape: LMP $20-50/MWh, cheapest Feb-May (when renewables peak);
// a NEGATIVE price/renewables correlation.

#include <iostream>

#include "bench_common.hpp"
#include "grid/fuel_mix.hpp"
#include "grid/price.hpp"
#include "stats/correlation.hpp"
#include "util/table.hpp"

using namespace greenhpc;

int main() {
  util::print_banner(std::cout, "FIG 3: Energy prices vs. sustainable fuel generation");

  const grid::FuelMixModel mix;
  const grid::LmpPriceModel prices(grid::PriceConfig{}, &mix);

  std::vector<util::MonthKey> months;
  std::vector<double> lmp, renew;
  util::MonthKey key = bench::kWindowStart;
  for (int i = 0; i < bench::kWindowMonths; ++i) {
    months.push_back(key);
    lmp.push_back(prices.monthly_average(key).usd_per_mwh());
    renew.push_back(mix.monthly_renewable_pct(key));
    key = key.next();
  }

  const auto lmp_by_month = bench::month_of_year_means(months, lmp);
  const auto renew_by_month = bench::month_of_year_means(months, renew);

  util::Table table({"month", "real-time avg price ($/MWh)", "% total from solar/wind"});
  for (int m = 0; m < 12; ++m) {
    table.add(util::month_name(m + 1), util::fmt_fixed(lmp_by_month[static_cast<std::size_t>(m)], 1),
              util::fmt_fixed(renew_by_month[static_cast<std::size_t>(m)], 2));
  }
  std::cout << table;

  const double corr = stats::pearson(lmp_by_month, renew_by_month);
  const double spring_price =
      (lmp_by_month[1] + lmp_by_month[2] + lmp_by_month[3] + lmp_by_month[4]) / 4.0;
  double rest_price = 0.0;
  for (int m : {0, 5, 6, 7, 8, 9, 10, 11}) rest_price += lmp_by_month[static_cast<std::size_t>(m)];
  rest_price /= 8.0;

  std::cout << "\nPearson(price, renewable share) = " << util::fmt_fixed(corr, 3)
            << "   (paper: prices lower when green share higher)\n";
  std::cout << "Feb-May mean LMP: $" << util::fmt_fixed(spring_price, 1)
            << "/MWh vs rest-of-year $" << util::fmt_fixed(rest_price, 1) << "/MWh\n";

  const bool shape_ok = corr < -0.3 && spring_price < rest_price;
  std::cout << "\n[verdict] " << (shape_ok ? "SHAPE OK" : "SHAPE MISMATCH")
            << ": springtime green months are also the cheapest ($20-25 band)\n";
  return shape_ok ? 0 : 1;
}
