// RESIL1 — CO2-saving retention under fault injection.
//
// The robustness question for this PR's fault subsystem: the migration
// planner's carbon edge (MIGRATE1) was measured on a fault-free fleet. Real
// fleets lose nodes, brown out, drop telemetry, and fail checkpoint
// transfers mid-flight. Does mid-run migration still pay once the same
// faults hammer both arms — or does the retry/abandon machinery burn the
// savings it was built to protect?
//
// Seed-paired Monte-Carlo sweep over fault intensity (same replica seed =>
// same arrival stream, same regional environments, and — because fault
// streams are keyed off the run seed, not the policy — the same fault
// timeline under either policy):
//
//   admission-only:  4-region fleet, carbon_forecast routing, faults on,
//                    jobs pinned to their region for life
//   migration-on:    identical, plus the carbon MigrationPlanner (faulted
//                    links, bounded retries, abandon-in-place)
//
// Retention = saving(intensity) / saving(fault-free), per intensity row.
//
// Acceptance (the ISSUE 10 bar):
//   - at moderate intensity (x1.0) migration-on keeps a CO2 edge on
//     >= 15/20 paired seeds with positive mean saving,
//   - delivered GPU-hours stay within 5% between the arms at every
//     intensity (degradation must not buy carbon with throughput).
//
// Flags (for the CI bench-smoke job): --replicas N (default 20), --days D
// (default 0 = one full month), --intensity X (extra sweep point).

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/aggregator.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "telemetry/experiment.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

constexpr std::uint64_t kBaseSeed = 42;
constexpr double kModerate = 1.0;  // the intensity the verdict gates on

struct Options {
  std::size_t replicas = 20;
  int days = 0;  // 0 = a full month
  std::vector<double> intensities{0.0, 0.5, kModerate, 2.0};
};

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replicas" && i + 1 < argc) {
      const int replicas = std::atoi(argv[++i]);
      if (replicas < 2) {
        std::cerr << "error: --replicas must be >= 2\n";
        std::exit(2);
      }
      opts.replicas = static_cast<std::size_t>(replicas);
    } else if (arg == "--days" && i + 1 < argc) {
      opts.days = std::atoi(argv[++i]);
      if (opts.days < 0) {
        std::cerr << "error: --days must be >= 0\n";
        std::exit(2);
      }
    } else if (arg == "--intensity" && i + 1 < argc) {
      const double intensity = std::atof(argv[++i]);
      if (intensity < 0.0) {
        std::cerr << "error: --intensity must be >= 0\n";
        std::exit(2);
      }
      opts.intensities.push_back(intensity);
    } else {
      std::cerr << "usage: fleet_resilience [--replicas N] [--days D] [--intensity X]\n";
      std::exit(2);
    }
  }
  return opts;
}

struct IntensityRow {
  double intensity = 0.0;
  telemetry::MetricStats saved;  ///< per-seed CO2 saving, percent
  std::size_t paired_wins = 0;
  double hours_ratio = 0.0;  ///< migration-on / admission-only GPU-hours
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse(argc, argv);
  util::print_banner(std::cout, "RESIL1: CO2-saving retention under fault injection");
  std::cout << opts.replicas << " seed-paired replicas per (policy, intensity), base seed "
            << kBaseSeed << "\n\n";

  // Same window as MIGRATE1 — hot July fleet under pressure — so the
  // fault-free row here reproduces that bench's headline saving.
  experiment::ScenarioSpec base;
  base.name = "fleet_resilience_bench";
  base.mode = experiment::Mode::kFleet;
  base.router = "carbon_forecast";
  base.start = {2021, 7};
  base.rate_per_hour = 14.0;
  if (opts.days > 0) {
    base.days = opts.days;
    base.warmup_days = 2;
  }

  const experiment::ReplicaRunner runner({opts.replicas, kBaseSeed, 0});
  std::vector<IntensityRow> rows;
  for (const double intensity : opts.intensities) {
    experiment::ScenarioSpec stay = base;
    stay.faults = intensity > 0.0 ? "default" : "off";
    stay.fault_intensity = intensity > 0.0 ? intensity : 1.0;
    stay.migration_policy = "off";
    experiment::ScenarioSpec move = stay;
    move.migration_policy = "carbon";

    const std::vector<experiment::ReplicaResult> stay_runs = runner.run(stay);
    const std::vector<experiment::ReplicaResult> move_runs = runner.run(move);

    IntensityRow row;
    row.intensity = intensity;
    std::vector<double> saved_pct;
    double stay_hours = 0.0, move_hours = 0.0;
    for (std::size_t k = 0; k < stay_runs.size(); ++k) {
      const double stay_co2 = stay_runs[k].run.grid_totals.carbon.kilograms();
      const double move_co2 = move_runs[k].run.grid_totals.carbon.kilograms();
      saved_pct.push_back(100.0 * (1.0 - move_co2 / stay_co2));
      if (move_co2 <= stay_co2) ++row.paired_wins;
      stay_hours += stay_runs[k].run.completed_gpu_hours;
      move_hours += move_runs[k].run.completed_gpu_hours;
    }
    row.saved = experiment::Aggregator::fold("saved_pct", saved_pct);
    row.hours_ratio = stay_hours > 0.0 ? move_hours / stay_hours : 0.0;
    rows.push_back(row);
  }

  const double baseline_saving = rows.front().saved.mean;  // intensity 0 row
  util::Table table({"fault_intensity", "co2_saved_pct (mean ± 95% CI)", "retention_pct",
                     "paired_wins", "gpu_hours_ratio"});
  for (const IntensityRow& row : rows) {
    const double retention =
        baseline_saving > 0.0 ? 100.0 * row.saved.mean / baseline_saving : 0.0;
    table.add(row.intensity > 0.0 ? "x" + util::fmt_fixed(row.intensity, 2) : "fault-free",
              telemetry::fmt_ci(row.saved.mean, row.saved.ci95_half, 3),
              row.intensity > 0.0 ? util::fmt_fixed(retention, 1) : "-",
              std::to_string(row.paired_wins) + "/" + std::to_string(opts.replicas),
              util::fmt_fixed(row.hours_ratio, 4));
  }
  std::cout << table << "\n";

  const IntensityRow* moderate = nullptr;
  for (const IntensityRow& row : rows) {
    if (row.intensity == kModerate) moderate = &row;
  }
  if (moderate == nullptr) {
    std::cout << "PASS (vacuous): no moderate-intensity (x1.0) row in the sweep\n";
    return 0;
  }

  // The verdict: the migration edge must survive moderate fault weather on
  // a solid majority of seeds, without throughput divergence anywhere.
  const bool majority_holds = 4 * moderate->paired_wins >= 3 * opts.replicas;
  const bool saving_positive = moderate->saved.mean > 0.0;
  bool hours_equal = true;
  for (const IntensityRow& row : rows) {
    hours_equal = hours_equal && row.hours_ratio > 0.95 && row.hours_ratio < 1.05;
  }
  const bool pass = majority_holds && saving_positive && hours_equal;
  std::cout << (pass ? "PASS" : "FAIL") << ": at x1.0 intensity migration-on wins "
            << moderate->paired_wins << "/" << opts.replicas
            << (majority_holds ? " (majority)" : " (NO majority)") << ", mean saving "
            << util::fmt_fixed(moderate->saved.mean, 3) << "%"
            << (saving_positive ? "" : " (NOT positive)") << "; GPU-hours "
            << (hours_equal ? "within" : "OUTSIDE") << " 5% at every intensity\n";
  return pass ? 0 : 1;
}
