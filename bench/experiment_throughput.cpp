// EXP-THRU — Replica-per-second scaling of the Monte-Carlo harness.
//
// The experiment subsystem's speed claim: replicas are embarrassingly
// parallel, so replica throughput should scale near-linearly with worker
// threads until the core count is exhausted (the ISSUE-2 acceptance bar is
// >= 4x at 8 workers on 8 cores). Each row runs the same ensemble on a pool
// of a different size and reports replicas/second, speedup vs 1 worker, and
// parallel efficiency. Determinism is asserted alongside: every pool size
// must produce bit-identical per-replica results (ensemble scheduling must
// never leak into the physics), and that check is this bench's exit code —
// speedup is hardware-dependent and only gates on machines with >= 8 cores.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "experiment/aggregator.hpp"
#include "experiment/runner.hpp"
#include "obs/manifest.hpp"
#include "util/table.hpp"

using namespace greenhpc;

namespace {

/// A short single-site window: heavy enough to measure (~100 ms/replica),
/// light enough that the 1-worker baseline stays interactive.
experiment::ScenarioSpec bench_scenario() {
  experiment::ScenarioSpec spec;
  spec.name = "throughput";
  spec.days = 21;
  spec.warmup_days = 3;
  return spec;
}

double run_once(const experiment::ReplicaRunner& runner, const experiment::ScenarioSpec& spec,
                std::vector<experiment::ReplicaResult>* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = runner.run(spec);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool identical(const core::RunSummary& a, const core::RunSummary& b) {
  return a.jobs_submitted == b.jobs_submitted && a.jobs_completed == b.jobs_completed &&
         a.completed_gpu_hours == b.completed_gpu_hours &&
         a.mean_queue_wait_hours == b.mean_queue_wait_hours &&
         a.grid_totals.energy.joules() == b.grid_totals.energy.joules() &&
         a.grid_totals.carbon.kilograms() == b.grid_totals.carbon.kilograms() &&
         a.grid_totals.cost.dollars() == b.grid_totals.cost.dollars();
}

}  // namespace

int main(int argc, char** argv) {
  // --json PATH merges replicas/sec into the shared BENCH_PERF.json (see
  // bench_common.hpp) so the perf trajectory artifact carries the parallel
  // harness alongside perf_simulator's step rates.
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: experiment_throughput [--json PATH]\n";
      return 2;
    }
  }

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  util::print_banner(std::cout, "EXP-THRU: replica throughput vs worker threads");
  std::cout << "hardware concurrency: " << cores << " core(s)\n\n";

  const experiment::ScenarioSpec spec = bench_scenario();
  constexpr std::size_t kReplicas = 16;

  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  if (cores > 8) worker_counts.push_back(cores);

  util::Table table({"workers", "seconds", "replicas_per_s", "speedup_vs_1", "efficiency_pct"});
  std::vector<experiment::ReplicaResult> baseline;
  double baseline_s = 0.0;
  double speedup_at_8 = 0.0;
  double replicas_per_s_1 = 0.0;
  double replicas_per_s_best = 0.0;
  bool deterministic = true;

  for (const std::size_t workers : worker_counts) {
    experiment::RunnerOptions opts;
    opts.replicas = kReplicas;
    opts.base_seed = 42;
    opts.jobs = workers;
    const experiment::ReplicaRunner runner(opts);

    std::vector<experiment::ReplicaResult> results;
    const double seconds = run_once(runner, spec, &results);

    if (workers == 1) {
      baseline = results;
      baseline_s = seconds;
    } else {
      for (std::size_t k = 0; k < kReplicas; ++k) {
        if (results[k].seed != baseline[k].seed || !identical(results[k].run, baseline[k].run)) {
          std::cout << "DETERMINISM MISMATCH: replica " << k << " differs at " << workers
                    << " workers\n";
          deterministic = false;
        }
      }
    }
    const double speedup = baseline_s / seconds;
    if (workers == 8) speedup_at_8 = speedup;
    const double replicas_per_s = static_cast<double>(kReplicas) / seconds;
    if (workers == 1) replicas_per_s_1 = replicas_per_s;
    replicas_per_s_best = std::max(replicas_per_s_best, replicas_per_s);
    table.add(workers, util::fmt_fixed(seconds, 2),
              util::fmt_fixed(static_cast<double>(kReplicas) / seconds, 2),
              util::fmt_fixed(speedup, 2),
              util::fmt_fixed(100.0 * speedup / static_cast<double>(workers), 1));
  }
  std::cout << table;

  // CI verdict alongside the timing: the aggregate itself.
  const experiment::ReplicaRunner agg_runner({kReplicas, 42, 0});
  std::cout << "\nensemble verdicts (" << kReplicas << " replicas):\n"
            << telemetry::experiment_table(
                   experiment::Aggregator::aggregate(agg_runner.run(spec)));

  if (!json_path.empty()) {
    obs::RunManifest manifest = obs::make_manifest("experiment_throughput");
    manifest.scenario = spec.label();
    manifest.seed = 42;
    bench::merge_perf_json(json_path,
                           {{"replicas_per_s_1worker", replicas_per_s_1},
                            {"replicas_per_s_best", replicas_per_s_best}},
                           manifest.to_json());
    std::cout << "\nmerged replicas/sec into " << json_path << "\n";
  }

  bool ok = deterministic;
  std::cout << "\n[determinism] " << (deterministic ? "OK" : "FAIL")
            << ": per-replica results are bit-identical across pool sizes\n";
  if (cores >= 8) {
    const bool fast_enough = speedup_at_8 >= 4.0;
    // Wall-clock bars flake under noisy-neighbor CPU contention, so the
    // exit code only enforces this on request (determinism always gates).
    const bool enforce = std::getenv("GREENHPC_ENFORCE_SCALING") != nullptr;
    if (enforce) ok = ok && fast_enough;
    std::cout << "[scaling] " << (fast_enough ? "OK" : (enforce ? "FAIL" : "BELOW BAR"))
              << ": speedup at 8 workers = " << util::fmt_fixed(speedup_at_8, 2)
              << "x (bar: >= 4x on >= 8 cores"
              << (enforce ? "" : "; informational, set GREENHPC_ENFORCE_SCALING to gate")
              << ")\n";
  } else {
    std::cout << "[scaling] SKIPPED: " << cores
              << " core(s) < 8; speedup reported for information only\n";
  }
  return ok ? 0 : 1;
}
